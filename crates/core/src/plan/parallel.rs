//! The morsel-driven parallel execution driver.
//!
//! A [`PhysicalPlan`] executes in three phases:
//!
//! 1. **Split** — the scanned table is cut into fixed-size morsels of
//!    [`MORSEL_ROWS`] rows. Morsels are zero-copy windows
//!    ([`Table::slice`]): every column keeps sharing its Arc'd payload.
//! 2. **Morsel phase** — each morsel independently runs the plan's
//!    filter stages and its shape stage: projection produces an output
//!    fragment, aggregation produces a mergeable partial state
//!    (`aggregate::compute_partial`). When the input spans more
//!    than one morsel and the plan allows more than one thread, a scoped
//!    worker pool executes this phase; idle workers pull the next
//!    unclaimed morsel off a shared counter (classic morsel-driven
//!    scheduling — load balances skewed filters for free).
//! 3. **Merge** — per-morsel results stitch back together *in morsel
//!    order*: output fragments concatenate ([`Table::vstack`]), partial
//!    aggregate states fold into global per-group states
//!    (`aggregate::merge_finalize`). The aggregate merge itself is
//!    parallel: the global group space is hash-partitioned into
//!    [`default_agg_partitions`] radix partitions and each partition
//!    merges independently on the same worker pool, still folding in
//!    morsel order within every group. Sort then runs once over the
//!    merged result — itself parallel: per-block sorted runs built on
//!    the same pool, combined by one deterministic k-way merge
//!    (`parallel_sort_indices`) — and Limit truncates.
//!
//! # Determinism
//!
//! Results are **bit-identical at every thread count** by construction:
//! morsel boundaries depend only on the input row count, merging always
//! walks morsels in index order, and error reporting picks the failing
//! morsel with the lowest index. Threads only decide *who* computes a
//! morsel, never *what* is computed. The aggregate-merge partition count
//! is equally inert: within any group the fold order is morsel order for
//! every P, and partition outputs scatter back into global
//! first-appearance order before assembly. A single-morsel input (≤
//! [`MORSEL_ROWS`] rows — including every table the row-at-a-time oracle
//! suite generates) additionally reproduces the pre-morsel whole-table
//! vectorized path bit-for-bit.

use std::sync::atomic::{AtomicUsize, Ordering};

use mosaic_storage::{kernels, ColumnBuilder, DataType, Field, Schema, Table, Value};
use parking_lot::Mutex;

use super::{aggregate, Batch, ExecContext, PhysicalPlan, Shape};
use crate::{MosaicError, Result};

/// Rows per morsel. Fixed (never derived from the thread count) so that
/// morsel boundaries — and therefore merged float accumulations — are a
/// function of the data alone. 16Ki rows keeps a handful of columns
/// comfortably inside L2 while giving a 100K-row scan enough morsels to
/// feed eight workers.
pub const MORSEL_ROWS: usize = 16 * 1024;

/// The default worker-thread cap for new plans: the `MOSAIC_PARALLELISM`
/// environment variable when set to a positive integer, otherwise the
/// machine's available parallelism. Computed once per process (`lower`
/// consults this on every statement).
pub fn default_parallelism() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("MOSAIC_PARALLELISM") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// The default radix-partition count for the parallel aggregate merge:
/// the `MOSAIC_AGG_PARTITIONS` environment variable when set to a
/// positive integer, otherwise 16. `1` disables partitioning (the merge
/// runs as a single serial pass — the pre-partitioning behavior, kept
/// verified by the CI matrix). The count is fixed independently of the
/// thread count and never changes results.
pub fn default_agg_partitions() -> usize {
    static DEFAULT: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("MOSAIC_AGG_PARTITIONS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        16
    })
}

/// Live engine worker threads (scoped threads spawned by
/// [`run_ordered`]), process-wide.
static ACTIVE_WORKERS: AtomicUsize = AtomicUsize::new(0);
/// High-water mark of [`ACTIVE_WORKERS`] since the last reset.
static PEAK_WORKERS: AtomicUsize = AtomicUsize::new(0);

/// RAII gauge: counts a worker thread as active for its lifetime and
/// maintains the process-wide peak.
struct WorkerGauge;

impl WorkerGauge {
    fn enter() -> WorkerGauge {
        let now = ACTIVE_WORKERS.fetch_add(1, Ordering::SeqCst) + 1;
        PEAK_WORKERS.fetch_max(now, Ordering::SeqCst);
        WorkerGauge
    }
}

impl Drop for WorkerGauge {
    fn drop(&mut self) {
        ACTIVE_WORKERS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Engine worker threads currently alive, process-wide. The calling
/// thread is never counted — only the scoped workers the morsel driver
/// and the OPEN replicate loop spawn (a single-threaded execution
/// spawns none and reads 0).
pub fn active_worker_threads() -> usize {
    ACTIVE_WORKERS.load(Ordering::SeqCst)
}

/// The highest number of engine worker threads simultaneously alive
/// since the last [`reset_worker_thread_peak`] — the observable that
/// lets a server (or a test) *prove* a shared thread budget held across
/// concurrent sessions.
pub fn worker_thread_peak() -> usize {
    PEAK_WORKERS.load(Ordering::SeqCst)
}

/// Reset the [`worker_thread_peak`] high-water mark to the current
/// active count.
pub fn reset_worker_thread_peak() {
    PEAK_WORKERS.store(ACTIVE_WORKERS.load(Ordering::SeqCst), Ordering::SeqCst);
}

/// Run `n_tasks` independent tasks on at most `workers` scoped threads
/// and return their results **in task order**. Idle workers claim the
/// next unstarted task off a shared counter (morsel-driven scheduling);
/// with `workers <= 1` the tasks simply run inline on the calling
/// thread. Shared by the morsel phase and the engine's OPEN replicate
/// loop — one ordered-pool implementation, not two.
pub(crate) fn run_ordered<T: Send>(
    n_tasks: usize,
    workers: usize,
    run: impl Fn(usize) -> T + Sync,
) -> Vec<T> {
    let workers = workers.min(n_tasks);
    if workers <= 1 {
        return (0..n_tasks).map(run).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n_tasks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let _gauge = WorkerGauge::enter();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_tasks {
                        break;
                    }
                    *slots[i].lock() = Some(run(i));
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every task was claimed"))
        .collect()
}

/// Sort the index range `0..n` under a strict total order, in parallel:
/// per-[`MORSEL_ROWS`]-block sorted runs built on the worker pool
/// ([`run_ordered`]), then one deterministic k-way merge
/// ([`kernels::merge_sorted_runs`]) on the calling thread.
///
/// `less` must be **strict** — order any two distinct indices one way,
/// with key ties broken on the index itself. That makes the result
/// exactly the order of a *stable* sort by the keys alone, and makes it
/// independent of the run split: bit-identical at every thread count.
/// Single-run inputs (`n <= MORSEL_ROWS`) and single-threaded callers
/// take one in-place sort with no pool traffic.
pub(crate) fn parallel_sort_indices(
    n: usize,
    threads: usize,
    less: impl Fn(usize, usize) -> bool + Sync,
) -> Vec<usize> {
    let ord = |a: &usize, b: &usize| {
        if less(*a, *b) {
            std::cmp::Ordering::Less
        } else if less(*b, *a) {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    };
    if n <= MORSEL_ROWS || threads <= 1 {
        let mut idx: Vec<usize> = (0..n).collect();
        // The order is strict, so an unstable sort is deterministic.
        idx.sort_unstable_by(ord);
        return idx;
    }
    let n_runs = n.div_ceil(MORSEL_ROWS);
    let runs = run_ordered(n_runs, threads, |ri| {
        let start = ri * MORSEL_ROWS;
        let end = (start + MORSEL_ROWS).min(n);
        let mut run: Vec<usize> = (start..end).collect();
        run.sort_unstable_by(ord);
        run
    });
    kernels::merge_sorted_runs(&runs, less)
}

/// What one morsel contributes to the merge phase.
enum MorselOut {
    /// Projection shape: the projected fragment, plus the post-filter
    /// input fragment when a Sort may need to resolve dropped columns.
    Shaped { out: Table, filtered: Option<Table> },
    /// Aggregation shape: a mergeable partial state.
    Partial(aggregate::MorselPartial),
}

/// Execute a two-relation join plan: the hash-join stage materializes
/// the combined table (build radix-partitioned on the smaller input,
/// probe morsel-parallel — see [`crate::plan::join::HashJoinOp`]), then
/// the remaining pipeline (residual filters, shape, ordering) runs over
/// the joined table through the ordinary morsel driver.
pub(crate) fn execute_join_plan(
    plan: &PhysicalPlan,
    left: &Table,
    right: &Table,
    params: &[Value],
    threads: usize,
    partitions: usize,
) -> Result<Table> {
    execute_join_plan_with(plan, left, right, params, threads, partitions, None)
}

/// [`execute_join_plan`] with an optional post-join hook (runs over the
/// materialized joined table before the rest of the pipeline — the
/// engine's IPF re-calibration of combined weights plugs in here).
/// When the plan's aggregate carries the §5.3 weighted rewrite, the
/// joined `weight` column becomes the row-weight vector of the
/// downstream pipeline; a NULL weight (a NULL-extended LEFT OUTER row)
/// contributes weight 0.
pub(crate) fn execute_join_plan_with(
    plan: &PhysicalPlan,
    left: &Table,
    right: &Table,
    params: &[Value],
    threads: usize,
    partitions: usize,
    post_join: Option<&(dyn Fn(Table) -> Result<Table> + Sync)>,
) -> Result<Table> {
    let join = plan
        .join
        .as_ref()
        .ok_or_else(|| MosaicError::Execution("plan has no join stage".into()))?;
    let mut joined = join.execute(left, right, params, threads, partitions)?;
    if let Some(f) = post_join {
        joined = f(joined)?;
    }
    let weights: Option<Vec<f64>> = if plan.agg_weighted() {
        let w = joined.column_by_name("weight").map_err(|_| {
            MosaicError::Execution(
                "weighted join aggregate requires the joined weight column".into(),
            )
        })?;
        Some((0..w.len()).map(|i| w.f64_at(i).unwrap_or(0.0)).collect())
    } else {
        None
    };
    execute_plan(
        plan,
        &joined,
        weights.as_deref(),
        params,
        threads,
        partitions,
    )
}

/// Execute `plan` over `table` on at most `threads` workers, binding
/// `params` into any positional-parameter placeholders. `partitions`
/// caps the radix-partition count of the aggregate merge phase (1 =
/// serial merge); like the thread cap it never changes results.
pub(crate) fn execute_plan(
    plan: &PhysicalPlan,
    table: &Table,
    weights: Option<&[f64]>,
    params: &[Value],
    threads: usize,
    partitions: usize,
) -> Result<Table> {
    // Pruned scan: keep only the columns the optimizer proved the plan
    // references. Columns are Arc-shared, so this is a cheap header-only
    // projection — the payoff is downstream, where Filter's row gather
    // and the sort-fallback merge stop materializing unread columns.
    // Weights are row-parallel and unaffected.
    let pruned;
    let table = match plan.scan_columns() {
        Some(cols) => {
            pruned = prune_scan(table, cols)?;
            &pruned
        }
        None => table,
    };
    let n = table.num_rows();
    let n_morsels = n.div_ceil(MORSEL_ROWS).max(1);
    // The filtered input only matters when a Sort might fall back to it
    // (non-aggregate plans with ordering stages); with no filter stages
    // the original table serves directly, with zero merging.
    let keep_filtered =
        !plan.is_aggregate() && !plan.post_shape.is_empty() && !plan.pre_shape().is_empty();

    // Every stage has a rank (filter op `i` = `i`; group keys / item
    // `j` of the shape = `pre_len + 0 / 1 + j`) and stages run in rank
    // order within a morsel, so a (rank, morsel) error key reproduces
    // the whole-table executor's error exactly: stages error in plan
    // order, and within a stage the lowest failing morsel holds the
    // first failing row.
    let pre_len = plan.pre_shape().len() as u32;
    let run = |mi: usize| -> aggregate::Ranked<MorselOut> {
        let start = mi * MORSEL_ROWS;
        let len = MORSEL_ROWS.min(n - start);
        let mut batch = Batch {
            table: table.slice(start, len),
            weights: weights.map(|w| w[start..start + len].to_vec()),
        };
        let ctx = ExecContext {
            filtered_input: None,
            params,
            // Morsel-phase operators are already running on the pool —
            // they never spawn nested workers.
            threads: 1,
        };
        for (oi, op) in plan.pre_shape().iter().enumerate() {
            batch = op.execute(&ctx, &batch).map_err(|e| (oi as u32, e))?;
        }
        match &plan.shape {
            Shape::Aggregate(agg) => {
                debug_assert_eq!(agg.weighted, batch.weights.is_some());
                aggregate::compute_partial(
                    &agg.items,
                    &agg.group_by,
                    &batch.table,
                    batch.weights.as_deref(),
                    params,
                )
                .map(MorselOut::Partial)
                .map_err(|(r, e)| (pre_len + r, e))
            }
            Shape::Project(project) => project
                .project_ranked(&batch.table, params)
                .map(|out| MorselOut::Shaped {
                    out,
                    filtered: keep_filtered.then_some(batch.table),
                })
                .map_err(|(r, e)| (pre_len.saturating_add(r), e)),
        }
    };

    let results = run_ordered(n_morsels, threads, run);

    // Surface the error of the lowest (stage rank, morsel index) pair —
    // the error a whole-table pass (and a sequential morsel walk)
    // reports.
    let mut outs = Vec::with_capacity(n_morsels);
    let mut first_err: Option<(u32, MosaicError)> = None;
    for r in results {
        match r {
            Ok(o) => outs.push(o),
            Err((rank, e)) => {
                // Earlier morsels are seen first, so a strict `<` keeps
                // the lowest morsel within a rank.
                if first_err.as_ref().is_none_or(|(br, _)| rank < *br) {
                    first_err = Some((rank, e));
                }
            }
        }
    }
    if let Some((_, e)) = first_err {
        return Err(e);
    }

    // Merge phase.
    let (mut batch, filtered_merged) = match &plan.shape {
        Shape::Aggregate(agg) => {
            let partials: Vec<aggregate::MorselPartial> = outs
                .into_iter()
                .map(|o| match o {
                    MorselOut::Partial(p) => p,
                    MorselOut::Shaped { .. } => unreachable!("aggregate plans emit partials"),
                })
                .collect();
            let table = aggregate::merge_finalize(
                &agg.items,
                weights.is_some(),
                &partials,
                params,
                threads,
                partitions,
            )?;
            (
                Batch {
                    table,
                    weights: None,
                },
                None,
            )
        }
        Shape::Project(_) => {
            let mut fragments = Vec::with_capacity(outs.len());
            let mut filtered = Vec::with_capacity(outs.len());
            for o in outs {
                match o {
                    MorselOut::Shaped { out, filtered: f } => {
                        fragments.push(out);
                        filtered.extend(f);
                    }
                    MorselOut::Partial(_) => unreachable!("projection plans emit fragments"),
                }
            }
            let merged = vstack_fragments(&fragments)?;
            let filtered_merged = if !plan.post_shape.is_empty() {
                if plan.pre_shape().is_empty() {
                    Some(table.clone())
                } else {
                    let refs: Vec<&Table> = filtered.iter().collect();
                    Some(Table::vstack(&refs)?)
                }
            } else {
                None
            };
            (
                Batch {
                    table: merged,
                    weights: None,
                },
                filtered_merged,
            )
        }
    };

    let ctx = ExecContext {
        filtered_input: filtered_merged.as_ref(),
        params,
        // Post-shape stages run once over the merged result with the
        // whole budget — Sort builds its runs on the worker pool.
        threads,
    };
    for op in &plan.post_shape {
        batch = op.execute(&ctx, &batch)?;
    }
    Ok(batch.table)
}

/// Resolve a pruned scan's column list against the actual table (by
/// name: the relation may have been re-bound since planning). Names the
/// table lacks are dropped — expressions referencing them report the
/// same unknown-column error they would without pruning. When nothing
/// survives (a column-free statement such as `SELECT COUNT(*)`), the
/// first column is kept so the scan's row count is preserved.
pub(crate) fn prune_scan(table: &Table, cols: &[String]) -> Result<Table> {
    let kept: Vec<&str> = cols
        .iter()
        .map(String::as_str)
        .filter(|n| table.schema().contains(n))
        .collect();
    if kept.len() == table.num_columns() {
        return Ok(table.clone());
    }
    if kept.is_empty() {
        if table.num_columns() == 0 {
            return Ok(table.clone());
        }
        let first = table.schema().field(0).name.clone();
        return table.project(&[first.as_str()]).map_err(Into::into);
    }
    table.project(&kept).map_err(Into::into)
}

/// Concatenate per-morsel projection outputs, reconciling the evaluator's
/// degenerate-type rule: a morsel whose output column came out all-NULL
/// (or whose every row was filtered away) types that column `Int`, while
/// sibling morsels carry the real type. All-NULL columns are recast to
/// the real type — nulls stay nulls, so no value changes — which is
/// exactly the type the whole-table pass would have inferred.
fn vstack_fragments(fragments: &[Table]) -> Result<Table> {
    let non_empty: Vec<&Table> = fragments.iter().filter(|t| !t.is_empty()).collect();
    let Some(first) = non_empty.first() else {
        // Everything filtered away (or an empty input): any fragment
        // carries the canonical empty-result schema.
        return Ok(fragments.first().expect("at least one morsel").clone());
    };
    let ncols = first.num_columns();
    // Per column, the type of some fragment that has at least one
    // non-NULL value (all fragments with one agree — output types are a
    // function of the statement and the input schema).
    let mut target: Vec<DataType> = (0..ncols).map(|c| first.column(c).data_type()).collect();
    for t in &non_empty {
        for (c, ty) in target.iter_mut().enumerate() {
            let col = t.column(c);
            if col.null_count() < col.len() {
                *ty = col.data_type();
            }
        }
    }
    let parts: Vec<Table> = non_empty
        .iter()
        .map(|t| recast_all_null_columns(t, &target))
        .collect::<Result<_>>()?;
    let refs: Vec<&Table> = parts.iter().collect();
    Table::vstack(&refs).map_err(Into::into)
}

/// Rebuild any all-NULL column whose type disagrees with the target as
/// an all-NULL column *of* the target type.
fn recast_all_null_columns(t: &Table, target: &[DataType]) -> Result<Table> {
    if (0..t.num_columns()).all(|c| t.column(c).data_type() == target[c]) {
        return Ok(t.clone());
    }
    let fields: Vec<Field> = t
        .schema()
        .fields()
        .iter()
        .zip(target)
        .map(|(f, &ty)| Field::new(f.name.clone(), ty))
        .collect();
    let columns = (0..t.num_columns())
        .map(|c| {
            let col = t.column(c);
            if col.data_type() == target[c] {
                return Ok(col.clone());
            }
            debug_assert_eq!(col.null_count(), col.len(), "only all-NULL columns recast");
            let mut b = ColumnBuilder::with_capacity(target[c], col.len());
            for _ in 0..col.len() {
                b.push(Value::Null)?;
            }
            Ok(b.finish())
        })
        .collect::<Result<Vec<_>>>()?;
    Table::new(Schema::new(fields), columns).map_err(Into::into)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::lower;
    use mosaic_sql::{parse, SelectStmt, Statement};
    use mosaic_storage::TableBuilder;

    fn select(src: &str) -> SelectStmt {
        match parse(src).unwrap().pop().unwrap() {
            Statement::Select(s) => s,
            other => panic!("not a select: {other:?}"),
        }
    }

    /// A table spanning several morsels, with NULLs and a skewed filter.
    fn big_table(rows: usize) -> (Table, Vec<f64>) {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for r in 0..rows {
            b.push_row(vec![
                Value::Str(format!("g{}", r % 7)),
                if r % 11 == 0 {
                    Value::Null
                } else {
                    Value::Int((r % 1000) as i64 - 300)
                },
                if r % 13 == 0 {
                    Value::Null
                } else {
                    Value::Float((r as f64) * 0.25 - 100.0)
                },
            ])
            .unwrap();
        }
        let weights = (0..rows).map(|r| 0.5 + (r % 10) as f64 * 0.3).collect();
        (b.finish(), weights)
    }

    fn identical(a: &Table, b: &Table) {
        assert_eq!(a.num_rows(), b.num_rows());
        assert_eq!(a.num_columns(), b.num_columns());
        for c in 0..a.num_columns() {
            assert_eq!(a.schema().field(c).name, b.schema().field(c).name);
            assert_eq!(a.schema().field(c).data_type, b.schema().field(c).data_type);
        }
        for r in 0..a.num_rows() {
            for c in 0..a.num_columns() {
                assert_eq!(a.value(r, c), b.value(r, c), "cell ({r},{c})");
            }
        }
    }

    /// The bit-identity invariant: thread count never changes results,
    /// on inputs that span many morsels, weighted and unweighted.
    #[test]
    fn thread_count_never_changes_results() {
        let (table, weights) = big_table(3 * MORSEL_ROWS + 123);
        for src in [
            "SELECT k, COUNT(*), SUM(i), AVG(f), MIN(i), MAX(f) FROM t \
             WHERE i > -100 GROUP BY k ORDER BY k",
            "SELECT COUNT(*), SUM(f) / COUNT(f) FROM t WHERE f IS NOT NULL",
            "SELECT k, i FROM t WHERE i % 5 = 0 ORDER BY f DESC LIMIT 50",
            "SELECT i + 1, f * 2.0 FROM t WHERE k = 'g3'",
        ] {
            let stmt = select(src);
            for weights in [None, Some(weights.as_slice())] {
                let baseline = lower(&stmt, weights.is_some())
                    .with_parallelism(1)
                    .execute(&table, weights)
                    .unwrap();
                for threads in [2, 3, 8] {
                    let out = lower(&stmt, weights.is_some())
                        .with_parallelism(threads)
                        .execute(&table, weights)
                        .unwrap();
                    identical(&baseline, &out);
                }
            }
        }
    }

    /// A morsel whose output is entirely NULL types its column Int; the
    /// merge must recast it to the real column type.
    #[test]
    fn all_null_morsel_outputs_recast() {
        let rows = 2 * MORSEL_ROWS;
        let schema = Schema::new(vec![Field::new("f", DataType::Float)]);
        let mut b = TableBuilder::new(schema);
        for r in 0..rows {
            // Second morsel entirely NULL.
            b.push_row(vec![if r >= MORSEL_ROWS {
                Value::Null
            } else {
                Value::Float(r as f64)
            }])
            .unwrap();
        }
        let t = b.finish();
        let stmt = select("SELECT f + 1 FROM t");
        let out = lower(&stmt, false)
            .with_parallelism(2)
            .execute(&t, None)
            .unwrap();
        assert_eq!(out.num_rows(), rows);
        assert_eq!(out.schema().field(0).data_type, DataType::Float);
        assert_eq!(out.value(0, 0), Value::Float(1.0));
        assert_eq!(out.value(MORSEL_ROWS, 0), Value::Null);
    }

    /// Fully-filtered inputs keep the serial empty-result schema.
    #[test]
    fn empty_result_schema_is_stable() {
        let (table, _) = big_table(2 * MORSEL_ROWS);
        let stmt = select("SELECT k, f FROM t WHERE i > 99999");
        for threads in [1, 4] {
            let out = lower(&stmt, false)
                .with_parallelism(threads)
                .execute(&table, None)
                .unwrap();
            assert_eq!(out.num_rows(), 0);
            assert_eq!(out.num_columns(), 2);
        }
    }

    /// Different SELECT items failing in different morsels must surface
    /// the error of the *earliest item* (stage rank), matching the
    /// whole-table executor — not the error of the earliest morsel.
    #[test]
    fn error_selection_is_stage_ordered() {
        let rows = 2 * MORSEL_ROWS;
        let schema = Schema::new(vec![
            Field::new("s1", DataType::Str),
            Field::new("s2", DataType::Str),
        ]);
        let mut b = TableBuilder::new(schema);
        for r in 0..rows {
            // s1 is all-NULL in morsel 0 (so morsel 0's AVG(s1) sees an
            // Int-typed column and passes) but non-null in morsel 1;
            // s2 is non-null in morsel 0 (so morsel 0 fails on SUM(s2)).
            b.push_row(vec![
                if r < MORSEL_ROWS {
                    Value::Null
                } else {
                    Value::Str("x".into())
                },
                if r < MORSEL_ROWS {
                    Value::Str("y".into())
                } else {
                    Value::Null
                },
            ])
            .unwrap();
        }
        let t = b.finish();
        let stmt = select("SELECT AVG(s1), SUM(s2) FROM t");
        let serial = crate::exec::run_select_rowwise(&stmt, &t, None).unwrap_err();
        for threads in [1, 2, 8] {
            let err = lower(&stmt, false)
                .with_parallelism(threads)
                .execute(&t, None)
                .unwrap_err();
            assert_eq!(err.to_string(), serial.to_string(), "{threads} threads");
        }
    }

    #[test]
    fn env_override_parses() {
        // Only asserts the parser contract, not the ambient environment.
        assert!(default_parallelism() >= 1);
    }
}
