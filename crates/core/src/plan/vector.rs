//! Vectorized expression evaluation over columnar tables.
//!
//! Expressions are lowered onto the typed kernels of
//! `mosaic_storage::kernels` whenever their shape allows it (numeric
//! arithmetic and comparisons, string comparisons, boolean logic in
//! three-valued form, `IN` lists, `BETWEEN`, `IS NULL`). Shapes outside
//! the fast path fall back to the row-at-a-time reference evaluator in
//! `crate::eval`, which also serves as the equivalence oracle for the
//! property-test suite: for every expression, this module's results are
//! value-identical to the oracle's (including error cases, which are
//! always delegated to the oracle so messages match exactly).

use std::borrow::Cow;

use mosaic_sql::{BinOp, Expr, UnaryOp};
use mosaic_storage::kernels::{self, CmpOp, FloatArithOp, IntArithOp};
use mosaic_storage::{Bitmap, Column, ColumnBuilder, DataType, Dictionary, Table, Value};

use crate::Result;

/// A three-valued-logic boolean vector: row `i` is TRUE iff
/// `truth[i] && valid[i]`, FALSE iff `!truth[i] && valid[i]`, and NULL
/// (unknown) iff `!valid[i]`. `valid = None` means every row is known.
pub(crate) struct BoolVec {
    truth: Bitmap,
    valid: Option<Bitmap>,
}

impl BoolVec {
    fn all_known(truth: Bitmap) -> BoolVec {
        BoolVec { truth, valid: None }
    }

    fn known_true(&self) -> Bitmap {
        match &self.valid {
            None => self.truth.clone(),
            Some(v) => self.truth.and(v),
        }
    }

    fn known_false(&self) -> Bitmap {
        match &self.valid {
            None => self.truth.not(),
            Some(v) => self.truth.not().and(v),
        }
    }

    /// Selection bitmap under SQL predicate semantics (NULL ⇒ excluded).
    pub(crate) fn selection(&self) -> Bitmap {
        self.known_true()
    }
}

/// A numeric intermediate: either a scalar (splat lazily) or a typed
/// vector with optional validity.
enum Num<'a> {
    ScalarInt(i64),
    ScalarFloat(f64),
    /// A literal NULL (propagates to every row).
    ScalarNull,
    Int(Cow<'a, [i64]>, Option<Bitmap>),
    Float(Cow<'a, [f64]>, Option<Bitmap>),
}

impl Num<'_> {
    fn validity(&self) -> Option<&Bitmap> {
        match self {
            Num::Int(_, v) | Num::Float(_, v) => v.as_ref(),
            _ => None,
        }
    }
}

// ---- public entry points ----

/// Vectorized predicate evaluation into a selection bitmap; falls back to
/// the row-at-a-time reference evaluator for unsupported shapes.
pub fn eval_predicate(expr: &Expr, table: &Table) -> Result<Bitmap> {
    match eval_bool(expr, table) {
        Some(bv) => Ok(bv.selection()),
        None => crate::eval::eval_predicate_rowwise(expr, table),
    }
}

/// Vectorized expression-to-column evaluation; falls back to the
/// row-at-a-time reference evaluator for unsupported shapes.
pub fn eval_expr(expr: &Expr, table: &Table) -> Result<Column> {
    let n = table.num_rows();
    if n == 0 {
        // The reference evaluator never inspects the expression on an
        // empty table and infers the default Int type; mirror that.
        return Ok(ColumnBuilder::new(DataType::Int).finish());
    }
    if let Some(col) = try_eval_column(expr, table, n) {
        return Ok(finalize_column(col));
    }
    crate::eval::eval_expr_rowwise(expr, table)
}

fn try_eval_column(expr: &Expr, table: &Table, n: usize) -> Option<Column> {
    match expr {
        Expr::Column(name) => table.column_by_name(name).ok().cloned(),
        Expr::Literal(v) => splat_value(v, n),
        _ => {
            if let Some(num) = eval_num(expr, table) {
                Some(num_to_column(num, n))
            } else {
                eval_bool(expr, table).map(bool_to_column)
            }
        }
    }
}

/// The reference evaluator infers a column type from the values it sees,
/// defaulting to Int when every value is NULL; mirror that so output
/// schemas are identical.
fn finalize_column(col: Column) -> Column {
    let n = col.len();
    if n > 0 && col.null_count() == n && col.data_type() != DataType::Int {
        return Column::from_i64_opt(vec![0; n], Some(Bitmap::zeros(n)));
    }
    col
}

fn splat_value(v: &Value, n: usize) -> Option<Column> {
    Some(match v {
        Value::Null => Column::from_i64_opt(vec![0; n], Some(Bitmap::zeros(n))),
        Value::Bool(b) => Column::from_bool(vec![*b; n]),
        Value::Int(i) => Column::from_i64(vec![*i; n]),
        Value::Float(f) => Column::from_f64(vec![*f; n]),
        Value::Str(s) => Column::from_str(vec![s.clone(); n]),
    })
}

fn num_to_column(num: Num<'_>, n: usize) -> Column {
    match num {
        Num::ScalarInt(i) => Column::from_i64(vec![i; n]),
        Num::ScalarFloat(f) => Column::from_f64(vec![f; n]),
        Num::ScalarNull => Column::from_i64_opt(vec![0; n], Some(Bitmap::zeros(n))),
        Num::Int(d, v) => Column::from_i64_opt(d.into_owned(), v),
        Num::Float(d, v) => Column::from_f64_opt(d.into_owned(), v),
    }
}

fn bool_to_column(bv: BoolVec) -> Column {
    let data: Vec<bool> = (0..bv.truth.len()).map(|i| bv.truth.get(i)).collect();
    Column::from_bool_opt(data, bv.valid)
}

// ---- numeric expression lowering ----

fn eval_num<'a>(expr: &'a Expr, table: &'a Table) -> Option<Num<'a>> {
    match expr {
        Expr::Literal(Value::Int(i)) => Some(Num::ScalarInt(*i)),
        Expr::Literal(Value::Float(f)) => Some(Num::ScalarFloat(*f)),
        Expr::Literal(Value::Null) => Some(Num::ScalarNull),
        Expr::Literal(_) => None,
        Expr::Column(name) => {
            let col = table.column_by_name(name).ok()?;
            match col.data_type() {
                DataType::Int => Some(Num::Int(
                    Cow::Borrowed(col.i64_data()?),
                    col.validity().cloned(),
                )),
                DataType::Float => Some(Num::Float(
                    Cow::Borrowed(col.f64_data()?),
                    col.validity().cloned(),
                )),
                _ => None,
            }
        }
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => Some(match eval_num(expr, table)? {
            Num::ScalarInt(i) => Num::ScalarInt(i.wrapping_neg()),
            Num::ScalarFloat(f) => Num::ScalarFloat(-f),
            Num::ScalarNull => Num::ScalarNull,
            Num::Int(d, v) => Num::Int(Cow::Owned(kernels::neg_i64(&d)), v),
            Num::Float(d, v) => Num::Float(Cow::Owned(kernels::neg_f64(&d)), v),
        }),
        Expr::Binary { left, op, right }
            if matches!(
                op,
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod
            ) =>
        {
            let l = eval_num(left, table)?;
            let r = eval_num(right, table)?;
            num_binary(l, *op, r)
        }
        _ => None,
    }
}

/// Scalar∘scalar arithmetic through the reference evaluator (guarantees
/// identical semantics for Int/Int division, div-by-zero, …).
fn scalar_binary(l: Value, op: BinOp, r: Value) -> Option<Num<'static>> {
    let expr = Expr::Binary {
        left: Box::new(Expr::Literal(l)),
        op,
        right: Box::new(Expr::Literal(r)),
    };
    match crate::eval::eval_row(&expr, None, 0).ok()? {
        Value::Int(i) => Some(Num::ScalarInt(i)),
        Value::Float(f) => Some(Num::ScalarFloat(f)),
        Value::Null => Some(Num::ScalarNull),
        _ => None,
    }
}

fn scalar_value(num: &Num<'_>) -> Option<Value> {
    match num {
        Num::ScalarInt(i) => Some(Value::Int(*i)),
        Num::ScalarFloat(f) => Some(Value::Float(*f)),
        Num::ScalarNull => Some(Value::Null),
        _ => None,
    }
}

fn is_scalar(num: &Num<'_>) -> bool {
    scalar_value(num).is_some()
}

fn int_arith_op(op: BinOp) -> Option<IntArithOp> {
    match op {
        BinOp::Add => Some(IntArithOp::Add),
        BinOp::Sub => Some(IntArithOp::Sub),
        BinOp::Mul => Some(IntArithOp::Mul),
        _ => None,
    }
}

fn float_arith_op(op: BinOp) -> Option<FloatArithOp> {
    match op {
        BinOp::Add => Some(FloatArithOp::Add),
        BinOp::Sub => Some(FloatArithOp::Sub),
        BinOp::Mul => Some(FloatArithOp::Mul),
        _ => None,
    }
}

/// Materialize a numeric operand as `f64` data (widening ints, splatting
/// scalars to `len`).
fn to_f64_vec(num: &Num<'_>, len: usize) -> Option<Vec<f64>> {
    match num {
        Num::ScalarInt(i) => Some(vec![*i as f64; len]),
        Num::ScalarFloat(f) => Some(vec![*f; len]),
        Num::ScalarNull => None,
        Num::Int(d, _) => Some(kernels::widen_i64(d)),
        Num::Float(d, _) => Some(d.to_vec()),
    }
}

fn num_len(num: &Num<'_>) -> Option<usize> {
    match num {
        Num::Int(d, _) => Some(d.len()),
        Num::Float(d, _) => Some(d.len()),
        _ => None,
    }
}

fn num_binary<'a>(l: Num<'a>, op: BinOp, r: Num<'a>) -> Option<Num<'a>> {
    // NULL literal on either side nulls every row.
    if matches!(l, Num::ScalarNull) || matches!(r, Num::ScalarNull) {
        return Some(Num::ScalarNull);
    }
    if is_scalar(&l) && is_scalar(&r) {
        return scalar_binary(scalar_value(&l)?, op, scalar_value(&r)?);
    }
    let len = num_len(&l).or_else(|| num_len(&r))?;
    let valid = kernels::combine_validity(l.validity(), r.validity());

    // Integer-preserving paths (Add/Sub/Mul/Mod stay Int when both sides
    // are Int; Div is always float per SQL semantics).
    if let (Num::Int(a, _), Num::Int(b, _)) = (&l, &r) {
        if let Some(iop) = int_arith_op(op) {
            return Some(Num::Int(Cow::Owned(kernels::arith_i64(a, iop, b)), valid));
        }
        if op == BinOp::Mod {
            let (out, nonzero) = kernels::mod_i64(a, b);
            let valid = kernels::combine_validity(valid.as_ref(), Some(&nonzero));
            return Some(Num::Int(Cow::Owned(out), valid));
        }
    }
    if let (Num::Int(a, _), Num::ScalarInt(b)) = (&l, &r) {
        if let Some(iop) = int_arith_op(op) {
            return Some(Num::Int(
                Cow::Owned(kernels::arith_i64_scalar(a, iop, *b)),
                valid,
            ));
        }
        if op == BinOp::Mod {
            let (out, nonzero) = kernels::mod_i64(a, &vec![*b; len]);
            let valid = kernels::combine_validity(valid.as_ref(), Some(&nonzero));
            return Some(Num::Int(Cow::Owned(out), valid));
        }
    }
    if let (Num::ScalarInt(a), Num::Int(b, _)) = (&l, &r) {
        match op {
            // Commutative ops reuse the scalar-rhs kernel directly.
            BinOp::Add => {
                return Some(Num::Int(
                    Cow::Owned(kernels::arith_i64_scalar(b, IntArithOp::Add, *a)),
                    valid,
                ))
            }
            BinOp::Mul => {
                return Some(Num::Int(
                    Cow::Owned(kernels::arith_i64_scalar(b, IntArithOp::Mul, *a)),
                    valid,
                ))
            }
            // a - x = -(x - a), still one pass plus an in-place negate.
            BinOp::Sub => {
                return Some(Num::Int(
                    Cow::Owned(kernels::neg_i64(&kernels::arith_i64_scalar(
                        b,
                        IntArithOp::Sub,
                        *a,
                    ))),
                    valid,
                ))
            }
            // Scalar % vector has no cheap rewrite; splat the scalar.
            BinOp::Mod => {
                let (out, nonzero) = kernels::mod_i64(&vec![*a; len], b);
                let valid = kernels::combine_validity(valid.as_ref(), Some(&nonzero));
                return Some(Num::Int(Cow::Owned(out), valid));
            }
            _ => {}
        }
    }

    // Scalar-broadcast fast paths: no splat of the scalar side.
    if let Some(fop) = float_arith_op(op) {
        match (scalar_f64(&l), scalar_f64(&r)) {
            (None, Some(b)) => {
                let a = num_f64_data(&l)?;
                return Some(Num::Float(
                    Cow::Owned(kernels::arith_f64_scalar(&a, fop, b)),
                    valid,
                ));
            }
            (Some(a), None) => {
                let b = num_f64_data(&r)?;
                return Some(Num::Float(
                    Cow::Owned(kernels::arith_scalar_f64(a, fop, &b)),
                    valid,
                ));
            }
            _ => {}
        }
    }
    // Float path (covers Div over ints and every mixed combination).
    let a = to_f64_vec(&l, len)?;
    let b = to_f64_vec(&r, len)?;
    match op {
        BinOp::Div => {
            let (out, nonzero) = kernels::div_f64(&a, &b);
            let valid = kernels::combine_validity(valid.as_ref(), Some(&nonzero));
            Some(Num::Float(Cow::Owned(out), valid))
        }
        BinOp::Mod => {
            let (out, nonzero) = kernels::mod_f64(&a, &b);
            let valid = kernels::combine_validity(valid.as_ref(), Some(&nonzero));
            Some(Num::Float(Cow::Owned(out), valid))
        }
        _ => {
            let fop = float_arith_op(op)?;
            Some(Num::Float(
                Cow::Owned(kernels::arith_f64(&a, fop, &b)),
                valid,
            ))
        }
    }
}

/// Numeric scalar as `f64` (ints widen); `None` for vectors and NULL.
fn scalar_f64(num: &Num<'_>) -> Option<f64> {
    match num {
        Num::ScalarInt(i) => Some(*i as f64),
        Num::ScalarFloat(f) => Some(*f),
        _ => None,
    }
}

/// Vector payload as `f64` data (borrowed for floats, widened for ints);
/// `None` for scalars.
fn num_f64_data<'b>(num: &'b Num<'_>) -> Option<Cow<'b, [f64]>> {
    match num {
        Num::Int(d, _) => Some(Cow::Owned(kernels::widen_i64(d))),
        Num::Float(d, _) => Some(Cow::Borrowed(d)),
        _ => None,
    }
}

// ---- boolean expression lowering ----

fn cmp_op(op: BinOp) -> Option<CmpOp> {
    match op {
        BinOp::Eq => Some(CmpOp::Eq),
        BinOp::NotEq => Some(CmpOp::Ne),
        BinOp::Lt => Some(CmpOp::Lt),
        BinOp::LtEq => Some(CmpOp::Le),
        BinOp::Gt => Some(CmpOp::Gt),
        BinOp::GtEq => Some(CmpOp::Ge),
        _ => None,
    }
}

/// Mirror of the comparison for swapped operands (`5 < x` ⇔ `x > 5`).
fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

pub(crate) fn eval_bool(expr: &Expr, table: &Table) -> Option<BoolVec> {
    let n = table.num_rows();
    match expr {
        Expr::Literal(Value::Bool(b)) => Some(BoolVec::all_known(if *b {
            Bitmap::ones(n)
        } else {
            Bitmap::zeros(n)
        })),
        Expr::Literal(Value::Null) => Some(BoolVec {
            truth: Bitmap::zeros(n),
            valid: Some(Bitmap::zeros(n)),
        }),
        Expr::Column(name) => {
            let col = table.column_by_name(name).ok()?;
            let data = col.bool_data()?;
            Some(BoolVec {
                truth: Bitmap::from_iter(data.iter().copied()),
                valid: col.validity().cloned(),
            })
        }
        Expr::Unary {
            op: UnaryOp::Not,
            expr,
        } => {
            let bv = eval_bool(expr, table)?;
            Some(BoolVec {
                truth: bv.known_false(),
                valid: bv.valid,
            })
        }
        Expr::Binary { left, op, right } => match op {
            BinOp::And | BinOp::Or => {
                let l = eval_bool(left, table)?;
                let r = eval_bool(right, table)?;
                if l.valid.is_none() && r.valid.is_none() {
                    let truth = if *op == BinOp::And {
                        l.truth.and(&r.truth)
                    } else {
                        l.truth.or(&r.truth)
                    };
                    return Some(BoolVec::all_known(truth));
                }
                let (lt, lf) = (l.known_true(), l.known_false());
                let (rt, rf) = (r.known_true(), r.known_false());
                let (kt, kf) = if *op == BinOp::And {
                    (lt.and(&rt), lf.or(&rf))
                } else {
                    (lt.or(&rt), lf.and(&rf))
                };
                let valid = kt.or(&kf);
                Some(BoolVec {
                    truth: kt,
                    valid: Some(valid),
                })
            }
            _ => {
                let cop = cmp_op(*op)?;
                eval_comparison(left, cop, right, table)
            }
        },
        Expr::IsNull { expr, negated } => eval_is_null(expr, *negated, table),
        Expr::InList {
            expr,
            list,
            negated,
        } => eval_in_list(expr, list, *negated, table),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            // Direct lowering (NOT decomposable into 3VL AND: the
            // reference evaluator yields NULL when *any* bound is NULL,
            // even if the other bound already decides the answer).
            let v = eval_num(expr, table)?;
            let lo = eval_num(low, table)?;
            let hi = eval_num(high, table)?;
            // Vector operand with scalar bounds takes the fused range
            // kernel (scalar, NULL, or NaN-bearing operands use the
            // general path, whose compare_nums NaN guard falls back to
            // the row-wise oracle).
            if let (Some(lo), Some(hi)) = (scalar_f64(&lo), scalar_f64(&hi)) {
                let inside = if lo.is_nan() || hi.is_nan() || contains_nan(&v) {
                    None
                } else {
                    match &v {
                        Num::Int(d, _) => Some(kernels::between_i64(d, lo, hi)),
                        Num::Float(d, _) => Some(kernels::between_f64(d, lo, hi)),
                        _ => None,
                    }
                };
                if let Some(inside) = inside {
                    return Some(BoolVec {
                        truth: if *negated { inside.not() } else { inside },
                        valid: v.validity().cloned(),
                    });
                }
            }
            let ge = compare_nums(&v, CmpOp::Ge, &lo, n)?;
            let le = compare_nums(&v, CmpOp::Le, &hi, n)?;
            let inside = ge.truth.and(&le.truth);
            let valid = kernels::combine_validity(ge.valid.as_ref(), le.valid.as_ref());
            Some(BoolVec {
                truth: if *negated { inside.not() } else { inside },
                valid,
            })
        }
        _ => None,
    }
}

fn eval_comparison(left: &Expr, op: CmpOp, right: &Expr, table: &Table) -> Option<BoolVec> {
    let n = table.num_rows();
    // Numeric comparison (everything coerces through f64, like sql_cmp).
    if let (Some(l), Some(r)) = (eval_num(left, table), eval_num(right, table)) {
        return compare_nums(&l, op, &r, n);
    }
    // String comparison.
    let l = str_operand(left, table)?;
    let r = str_operand(right, table)?;
    match (l, r) {
        (StrOperand::Scalar(a), StrOperand::Scalar(b)) => {
            let truth = op.holds(a.cmp(b));
            Some(BoolVec::all_known(if truth {
                Bitmap::ones(n)
            } else {
                Bitmap::zeros(n)
            }))
        }
        // Dictionary vs literal: answer the predicate once per distinct
        // value (a K-entry LUT), then one indexed load per row.
        (StrOperand::Dict(codes, dict, v), StrOperand::Scalar(s)) => Some(BoolVec {
            truth: kernels::lookup_codes(codes, &cmp_lut(dict, op, s)),
            valid: v.cloned(),
        }),
        (StrOperand::Scalar(s), StrOperand::Dict(codes, dict, v)) => Some(BoolVec {
            truth: kernels::lookup_codes(codes, &cmp_lut(dict, flip(op), s)),
            valid: v.cloned(),
        }),
        (StrOperand::Col(d, v), StrOperand::Scalar(s)) => Some(BoolVec {
            truth: kernels::cmp_str_scalar(d, op, s),
            valid: v.cloned(),
        }),
        (StrOperand::Scalar(s), StrOperand::Col(d, v)) => Some(BoolVec {
            truth: kernels::cmp_str_scalar(d, flip(op), s),
            valid: v.cloned(),
        }),
        (StrOperand::Col(a, va), StrOperand::Col(b, vb)) => Some(BoolVec {
            truth: kernels::cmp_str(a, b, op),
            valid: kernels::combine_validity(va, vb),
        }),
        // Column vs column with a dictionary side: compare borrowed &str
        // views (no String clones, no decode copy).
        (a, b) => {
            let (va, vb) = (a.validity(), b.validity());
            let truth = kernels::cmp_str_pairs(&a.str_refs()?, &b.str_refs()?, op);
            Some(BoolVec {
                truth,
                valid: kernels::combine_validity(va, vb),
            })
        }
    }
}

/// Per-code truth table for `value <op> rhs` over a dictionary.
fn cmp_lut(dict: &Dictionary, op: CmpOp, rhs: &str) -> Vec<bool> {
    dict.values()
        .iter()
        .map(|v| op.holds(v.as_str().cmp(rhs)))
        .collect()
}

enum StrOperand<'a> {
    Scalar(&'a str),
    Col(&'a [String], Option<&'a Bitmap>),
    Dict(&'a [u32], &'a Dictionary, Option<&'a Bitmap>),
}

impl<'a> StrOperand<'a> {
    fn validity(&self) -> Option<&'a Bitmap> {
        match self {
            StrOperand::Scalar(_) => None,
            StrOperand::Col(_, v) | StrOperand::Dict(_, _, v) => *v,
        }
    }

    /// Borrowed per-row string views (columns only; scalars return None).
    fn str_refs(&self) -> Option<Vec<&'a str>> {
        match self {
            StrOperand::Scalar(_) => None,
            StrOperand::Col(d, _) => Some(d.iter().map(|s| s.as_str()).collect()),
            StrOperand::Dict(codes, dict, _) => Some(codes.iter().map(|&c| dict.get(c)).collect()),
        }
    }
}

fn str_operand<'a>(expr: &'a Expr, table: &'a Table) -> Option<StrOperand<'a>> {
    match expr {
        Expr::Literal(Value::Str(s)) => Some(StrOperand::Scalar(s)),
        Expr::Column(name) => {
            let col = table.column_by_name(name).ok()?;
            if let Some((codes, dict)) = col.dict_parts() {
                return Some(StrOperand::Dict(codes, dict.as_ref(), col.validity()));
            }
            Some(StrOperand::Col(col.str_data()?, col.validity()))
        }
        _ => None,
    }
}

/// True if a numeric operand can contain NaN anywhere `sql_cmp` would
/// see it. The reference evaluator *errors* on NaN comparisons
/// (`partial_cmp` returns `None` → "cannot compare"), so the kernels
/// must not silently answer them — bail to the row-wise fallback.
fn contains_nan(num: &Num<'_>) -> bool {
    match num {
        Num::ScalarFloat(f) => f.is_nan(),
        Num::Float(d, _) => d.iter().any(|v| v.is_nan()),
        _ => false,
    }
}

fn compare_nums(l: &Num<'_>, op: CmpOp, r: &Num<'_>, n: usize) -> Option<BoolVec> {
    if matches!(l, Num::ScalarNull) || matches!(r, Num::ScalarNull) {
        return Some(BoolVec {
            truth: Bitmap::zeros(n),
            valid: Some(Bitmap::zeros(n)),
        });
    }
    if contains_nan(l) || contains_nan(r) {
        return None;
    }
    let valid = kernels::combine_validity(l.validity(), r.validity());
    let truth = match (l, r) {
        (Num::Int(a, _), Num::ScalarInt(b)) => kernels::cmp_i64_scalar(a, op, *b as f64),
        (Num::Int(a, _), Num::ScalarFloat(b)) => kernels::cmp_i64_scalar(a, op, *b),
        (Num::Float(a, _), Num::ScalarInt(b)) => kernels::cmp_f64_scalar(a, op, *b as f64),
        (Num::Float(a, _), Num::ScalarFloat(b)) => kernels::cmp_f64_scalar(a, op, *b),
        (Num::ScalarInt(a), Num::Int(b, _)) => kernels::cmp_i64_scalar(b, flip(op), *a as f64),
        (Num::ScalarFloat(a), Num::Int(b, _)) => kernels::cmp_i64_scalar(b, flip(op), *a),
        (Num::ScalarInt(a), Num::Float(b, _)) => kernels::cmp_f64_scalar(b, flip(op), *a as f64),
        (Num::ScalarFloat(a), Num::Float(b, _)) => kernels::cmp_f64_scalar(b, flip(op), *a),
        (Num::Int(a, _), Num::Int(b, _)) => kernels::cmp_i64(a, b, op),
        (Num::Float(a, _), Num::Float(b, _)) => kernels::cmp_f64(a, b, op),
        (Num::Int(a, _), Num::Float(b, _)) => kernels::cmp_i64_f64(a, b, op),
        (Num::Float(a, _), Num::Int(b, _)) => kernels::cmp_f64_i64(a, b, op),
        (a, b) => {
            // Scalar vs scalar: evaluate once and splat.
            let expr = Expr::Binary {
                left: Box::new(Expr::Literal(scalar_value(a)?)),
                op: scalar_cmp_binop(op),
                right: Box::new(Expr::Literal(scalar_value(b)?)),
            };
            return match crate::eval::eval_row(&expr, None, 0).ok()? {
                Value::Bool(t) => Some(BoolVec {
                    truth: if t { Bitmap::ones(n) } else { Bitmap::zeros(n) },
                    valid,
                }),
                Value::Null => Some(BoolVec {
                    truth: Bitmap::zeros(n),
                    valid: Some(Bitmap::zeros(n)),
                }),
                _ => None,
            };
        }
    };
    Some(BoolVec { truth, valid })
}

fn scalar_cmp_binop(op: CmpOp) -> BinOp {
    match op {
        CmpOp::Eq => BinOp::Eq,
        CmpOp::Ne => BinOp::NotEq,
        CmpOp::Lt => BinOp::Lt,
        CmpOp::Le => BinOp::LtEq,
        CmpOp::Gt => BinOp::Gt,
        CmpOp::Ge => BinOp::GtEq,
    }
}

fn eval_is_null(operand: &Expr, negated: bool, table: &Table) -> Option<BoolVec> {
    let n = table.num_rows();
    // Any column type works directly off the validity bitmap.
    let null_mask: Bitmap = if let Expr::Column(name) = operand {
        let col = table.column_by_name(name).ok()?;
        match col.validity() {
            Some(v) => v.not(),
            None => Bitmap::zeros(n),
        }
    } else if let Some(num) = eval_num(operand, table) {
        match num {
            Num::ScalarNull => Bitmap::ones(n),
            Num::ScalarInt(_) | Num::ScalarFloat(_) => Bitmap::zeros(n),
            Num::Int(_, v) | Num::Float(_, v) => match v {
                Some(v) => v.not(),
                None => Bitmap::zeros(n),
            },
        }
    } else {
        return None;
    };
    Some(BoolVec::all_known(if negated {
        null_mask.not()
    } else {
        null_mask
    }))
}

fn eval_in_list(operand: &Expr, list: &[Expr], negated: bool, table: &Table) -> Option<BoolVec> {
    // Only literal lists are lowered (the universal case in practice).
    let mut literals = Vec::with_capacity(list.len());
    for item in list {
        match item {
            Expr::Literal(v) => literals.push(v),
            _ => return None,
        }
    }
    let saw_null = literals.iter().any(|v| v.is_null());
    let (matched, operand_valid) = match operand {
        Expr::Column(name) => {
            let col = table.column_by_name(name).ok()?;
            let matched = match col.data_type() {
                DataType::Str => {
                    // Non-string literals never match a string operand
                    // under sql_cmp (and don't count as NULL sightings
                    // unless they are literal NULLs).
                    let set: Vec<&str> = literals.iter().filter_map(|v| v.as_str()).collect();
                    if let Some((codes, dict)) = col.dict_parts() {
                        // Membership decided once per distinct value.
                        let lut: Vec<bool> = dict
                            .values()
                            .iter()
                            .map(|v| set.iter().any(|s| s == v))
                            .collect();
                        kernels::lookup_codes(codes, &lut)
                    } else {
                        kernels::in_str_set(col.str_data()?, &set)
                    }
                }
                DataType::Int => {
                    let set: Vec<f64> = literals.iter().filter_map(|v| v.as_f64()).collect();
                    kernels::in_i64_set(col.i64_data()?, &set)
                }
                DataType::Float => {
                    let set: Vec<f64> = literals.iter().filter_map(|v| v.as_f64()).collect();
                    kernels::in_f64_set(col.f64_data()?, &set)
                }
                DataType::Bool => return None,
            };
            (matched, col.validity().cloned())
        }
        _ => {
            let num = eval_num(operand, table)?;
            let set: Vec<f64> = literals.iter().filter_map(|v| v.as_f64()).collect();
            let matched = match &num {
                Num::Int(d, _) => kernels::in_i64_set(d, &set),
                Num::Float(d, _) => kernels::in_f64_set(d, &set),
                // Scalar operands are rare; let the oracle handle them.
                _ => return None,
            };
            (matched, num.validity().cloned())
        }
    };
    // Row semantics: operand NULL ⇒ NULL; matched ⇒ !negated;
    // unmatched with a NULL in the list ⇒ NULL; else ⇒ negated.
    let truth = if negated {
        matched.not()
    } else {
        matched.clone()
    };
    let valid = if saw_null {
        Some(match &operand_valid {
            Some(v) => v.and(&matched),
            None => matched,
        })
    } else {
        operand_valid
    };
    Some(BoolVec { truth, valid })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_sql::parse_expr;
    use mosaic_storage::{Field, Schema, TableBuilder};

    fn table() -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Int),
            Field::new("s", DataType::Str),
            Field::new("f", DataType::Float),
            Field::new("b", DataType::Bool),
        ]);
        let mut t = TableBuilder::new(schema);
        t.push_row(vec![1.into(), "a".into(), 0.5.into(), true.into()])
            .unwrap();
        t.push_row(vec![2.into(), "b".into(), 1.5.into(), false.into()])
            .unwrap();
        t.push_row(vec![3.into(), "a".into(), Value::Null, Value::Null])
            .unwrap();
        t.push_row(vec![Value::Null, "c".into(), 4.5.into(), true.into()])
            .unwrap();
        t.finish()
    }

    /// Every predicate here must agree with the row-at-a-time oracle.
    #[test]
    fn predicates_match_oracle() {
        let t = table();
        for src in [
            "x > 1",
            "x > 1 AND s = 'a'",
            "x = 1 OR s = 'b'",
            "NOT x = 2",
            "f < 100",
            "f IS NULL",
            "f IS NOT NULL",
            "s IN ('a', 'z')",
            "s NOT IN ('a')",
            "x IN (1, 3, NULL)",
            "x NOT IN (1, NULL)",
            "x BETWEEN 2 AND 3",
            "x NOT BETWEEN 2 AND 3",
            "f BETWEEN 0 AND 2",
            "x + 1 > 2",
            "x * 2 = 4",
            "x / 0 > 1",
            "f > 0 OR x = 3",
            "f > 0 AND x >= 1",
            "b",
            "NOT b",
            "b = true",
            "x % 2 = 1",
            "2 < x",
            "'a' = s",
            "1 = 1",
            "NULL > 1",
            "-x < -1",
            "x > 0.5",
            "f = 1.5",
            "x + f > 2",
        ] {
            let expr = parse_expr(src).unwrap();
            let vec = eval_predicate(&expr, &t).unwrap();
            let row = crate::eval::eval_predicate_rowwise(&expr, &t).unwrap();
            assert_eq!(vec.to_indices(), row.to_indices(), "predicate {src}");
        }
    }

    #[test]
    fn projections_match_oracle() {
        let t = table();
        for src in [
            "x",
            "s",
            "f",
            "b",
            "x + 1",
            "x * 2",
            "2 + x",
            "2 * x",
            "2 - x",
            "7 % x",
            "x + f",
            "x / 2",
            "x / 0",
            "x % 2",
            "f - 0.5",
            "-x",
            "-f",
            "2",
            "2.5",
            "'lit'",
            "NULL",
            "x > 2",
            "s = 'a'",
            "f IS NULL",
            "x IN (1, 2)",
            "x BETWEEN 1 AND 2",
        ] {
            let expr = parse_expr(src).unwrap();
            let vec = eval_expr(&expr, &t).unwrap();
            let row = crate::eval::eval_expr_rowwise(&expr, &t).unwrap();
            assert_eq!(vec.data_type(), row.data_type(), "type of {src}");
            assert_eq!(vec.len(), row.len(), "len of {src}");
            for i in 0..vec.len() {
                assert_eq!(vec.value(i), row.value(i), "{src} row {i}");
            }
        }
    }

    #[test]
    fn empty_table_defaults_to_int() {
        let t = Table::empty(Schema::new(vec![Field::new("s", DataType::Str)]));
        let c = eval_expr(&parse_expr("s").unwrap(), &t).unwrap();
        assert_eq!(c.data_type(), DataType::Int);
        assert!(c.is_empty());
    }

    #[test]
    fn all_null_results_default_to_int() {
        let schema = Schema::new(vec![Field::new("f", DataType::Float)]);
        let mut b = TableBuilder::new(schema);
        b.push_row(vec![Value::Null]).unwrap();
        let t = b.finish();
        let vec = eval_expr(&parse_expr("f + 1").unwrap(), &t).unwrap();
        let row = crate::eval::eval_expr_rowwise(&parse_expr("f + 1").unwrap(), &t).unwrap();
        assert_eq!(vec.data_type(), row.data_type());
        assert_eq!(vec.value(0), row.value(0));
    }

    #[test]
    fn nan_comparisons_agree_with_oracle() {
        // The oracle errors on NaN comparisons (sql_cmp -> None) and
        // yields NULL for NaN BETWEEN bounds; the kernels must not
        // silently answer either shape.
        let schema = Schema::new(vec![Field::new("f", DataType::Float)]);
        let mut b = TableBuilder::new(schema);
        for v in [1.0, f64::NAN, -2.0] {
            b.push_row(vec![v.into()]).unwrap();
        }
        let t = b.finish();
        for src in ["f > 0", "f BETWEEN 0 AND 2", "f NOT BETWEEN 0 AND 2"] {
            let expr = parse_expr(src).unwrap();
            let vec = eval_predicate(&expr, &t);
            let row = crate::eval::eval_predicate_rowwise(&expr, &t);
            match (vec, row) {
                (Ok(a), Ok(b)) => assert_eq!(a.to_indices(), b.to_indices(), "{src}"),
                (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string(), "{src}"),
                other => panic!("divergence on {src}: {other:?}"),
            }
        }
    }

    #[test]
    fn unsupported_shapes_fall_back() {
        let t = table();
        // Bool arithmetic has no kernel path; the fallback must agree
        // with (i.e. be) the oracle.
        let expr = parse_expr("b + 1").unwrap();
        let vec = eval_expr(&expr, &t);
        let row = crate::eval::eval_expr_rowwise(&expr, &t);
        match (vec, row) {
            (Ok(a), Ok(b)) => {
                for i in 0..a.len() {
                    assert_eq!(a.value(i), b.value(i));
                }
            }
            (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
            other => panic!("divergence: {other:?}"),
        }
    }
}
