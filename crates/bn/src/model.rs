use std::collections::HashMap;
use std::fmt;

use mosaic_stats::Binner;
use mosaic_storage::{DataType, Schema, StorageError, Table, TableBuilder, Value};
use rand::Rng;

/// Bayesian-network hyperparameters.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BnConfig {
    /// Equal-width bins for continuous attributes.
    pub bins: usize,
    /// Laplace smoothing pseudo-count for CPT cells.
    pub laplace: f64,
}

impl BnConfig {
    /// Set the number of equal-width bins for continuous attributes.
    pub fn with_bins(mut self, bins: usize) -> Self {
        self.bins = bins;
        self
    }

    /// Set the Laplace smoothing pseudo-count.
    pub fn with_laplace(mut self, laplace: f64) -> Self {
        self.laplace = laplace;
        self
    }
}

impl Default for BnConfig {
    fn default() -> Self {
        BnConfig {
            bins: 20,
            laplace: 0.1,
        }
    }
}

/// Errors from Bayesian-network fitting.
#[derive(Debug)]
pub enum BnError {
    /// The training sample has no rows (or no mass).
    EmptySample,
    /// Underlying storage error.
    Storage(StorageError),
}

impl fmt::Display for BnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BnError::EmptySample => write!(f, "cannot fit a Bayesian network on an empty sample"),
            BnError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for BnError {}

impl From<StorageError> for BnError {
    fn from(e: StorageError) -> Self {
        BnError::Storage(e)
    }
}

/// How a node's discrete states map back to column values.
#[derive(Debug, Clone)]
enum Decode {
    /// Distinct categorical values by state index.
    Categorical(Vec<Value>),
    /// Continuous binning; decoded uniformly within the bin.
    Binned { binner: Binner, integer: bool },
}

#[derive(Debug, Clone)]
struct Node {
    name: String,
    decode: Decode,
    cardinality: usize,
    /// Parent node index (None for the root).
    parent: Option<usize>,
    /// CPT: `cpt[parent_state][state]`, rows of length `cardinality`
    /// summing to 1. For the root there is a single pseudo-parent state.
    cpt: Vec<Vec<f64>>,
}

/// A Chow–Liu tree Bayesian network fitted to a (weighted) sample.
pub struct BayesNet {
    /// Nodes in topological order (parents precede children).
    nodes: Vec<Node>,
    /// Topological order as indices into the original attribute order.
    schema: std::sync::Arc<Schema>,
}

impl BayesNet {
    /// Fit structure (Chow–Liu maximum-MI spanning tree) and CPTs on a
    /// weighted sample. Pass IPF weights to realize the Themis pipeline;
    /// pass `None` for an unweighted fit.
    pub fn fit(
        sample: &Table,
        weights: Option<&[f64]>,
        config: &BnConfig,
    ) -> Result<BayesNet, BnError> {
        let n = sample.num_rows();
        if n == 0 {
            return Err(BnError::EmptySample);
        }
        let w: Vec<f64> = match weights {
            Some(w) => {
                assert_eq!(w.len(), n, "weight length mismatch");
                w.to_vec()
            }
            None => vec![1.0; n],
        };
        let total: f64 = w.iter().sum();
        if total <= 0.0 {
            return Err(BnError::EmptySample);
        }
        let d = sample.num_columns();
        // Discretize every column to state indices.
        let mut decodes = Vec::with_capacity(d);
        let mut states: Vec<Vec<usize>> = Vec::with_capacity(d);
        for (ci, field) in sample.schema().fields().iter().enumerate() {
            let col = sample.column(ci);
            match field.data_type {
                DataType::Str | DataType::Bool => {
                    let mut values: Vec<Value> = Vec::new();
                    let mut index: HashMap<Value, usize> = HashMap::new();
                    let mut s = Vec::with_capacity(n);
                    for v in col.iter() {
                        let next = values.len();
                        let id = *index.entry(v.clone()).or_insert_with(|| {
                            values.push(v.clone());
                            next
                        });
                        s.push(id);
                    }
                    decodes.push(Decode::Categorical(values));
                    states.push(s);
                }
                DataType::Int | DataType::Float => {
                    let (min, max) = col.numeric_range().unwrap_or((0.0, 1.0));
                    let binner = Binner::equal_width(min, (max).max(min + 1e-9), config.bins);
                    let s = (0..n)
                        .map(|r| binner.bin(col.f64_at(r).unwrap_or(min)))
                        .collect();
                    decodes.push(Decode::Binned {
                        binner,
                        integer: field.data_type == DataType::Int,
                    });
                    states.push(s);
                }
            }
        }
        let cards: Vec<usize> = decodes
            .iter()
            .map(|dec| match dec {
                Decode::Categorical(v) => v.len().max(1),
                Decode::Binned { binner, .. } => binner.num_bins(),
            })
            .collect();

        // Pairwise weighted mutual information.
        let mut edges: Vec<(f64, usize, usize)> = Vec::new();
        for a in 0..d {
            for b in (a + 1)..d {
                let mi = mutual_information(&states[a], &states[b], &w, cards[a], cards[b]);
                edges.push((mi, a, b));
            }
        }
        // Maximum spanning tree (Kruskal).
        edges.sort_by(|x, y| y.0.total_cmp(&x.0));
        let mut dsu: Vec<usize> = (0..d).collect();
        fn find(dsu: &mut Vec<usize>, x: usize) -> usize {
            if dsu[x] != x {
                let r = find(dsu, dsu[x]);
                dsu[x] = r;
            }
            dsu[x]
        }
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); d];
        for (_, a, b) in edges {
            let (ra, rb) = (find(&mut dsu, a), find(&mut dsu, b));
            if ra != rb {
                dsu[ra] = rb;
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        // Orient the tree from root 0 via BFS; forest components each get
        // their first-seen node as a root.
        let mut parent: Vec<Option<usize>> = vec![None; d];
        let mut order: Vec<usize> = Vec::with_capacity(d);
        let mut visited = vec![false; d];
        for start in 0..d {
            if visited[start] {
                continue;
            }
            let mut queue = std::collections::VecDeque::from([start]);
            visited[start] = true;
            while let Some(u) = queue.pop_front() {
                order.push(u);
                for &v in &adj[u] {
                    if !visited[v] {
                        visited[v] = true;
                        parent[v] = Some(u);
                        queue.push_back(v);
                    }
                }
            }
        }

        // CPTs with Laplace smoothing, in topological order.
        let mut nodes = Vec::with_capacity(d);
        for &u in &order {
            let card = cards[u];
            let (pcard, cpt) = match parent[u] {
                None => {
                    let mut counts = vec![config.laplace; card];
                    for r in 0..n {
                        counts[states[u][r]] += w[r];
                    }
                    let s: f64 = counts.iter().sum();
                    (1, vec![counts.iter().map(|c| c / s).collect()])
                }
                Some(p) => {
                    let pcard = cards[p];
                    let mut table = vec![vec![config.laplace; card]; pcard];
                    for r in 0..n {
                        table[states[p][r]][states[u][r]] += w[r];
                    }
                    for row in &mut table {
                        let s: f64 = row.iter().sum();
                        for c in row.iter_mut() {
                            *c /= s;
                        }
                    }
                    (pcard, table)
                }
            };
            debug_assert_eq!(cpt.len(), pcard);
            nodes.push(Node {
                name: sample.schema().field(u).name.clone(),
                decode: decodes[u].clone(),
                cardinality: card,
                // Remap parent to position in `order`.
                parent: parent[u].map(|p| {
                    order
                        .iter()
                        .position(|&x| x == p)
                        .expect("parent ordered first")
                }),
                cpt,
            });
        }
        Ok(BayesNet {
            nodes,
            schema: std::sync::Arc::clone(sample.schema()),
        })
    }

    /// Number of nodes (attributes).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree edges as `(child_attr, parent_attr)` names.
    pub fn edges(&self) -> Vec<(String, String)> {
        self.nodes
            .iter()
            .filter_map(|node| {
                node.parent
                    .map(|p| (node.name.clone(), self.nodes[p].name.clone()))
            })
            .collect()
    }

    /// Exact marginal distribution of one attribute via a topological pass
    /// (`P(child) = Σ_u P(parent=u)·P(child|u)`) — the "direct inference"
    /// the paper describes for COUNT queries over explicit models.
    pub fn node_marginal(&self, attr: &str) -> Option<Vec<(Value, f64)>> {
        let marginals = self.all_state_marginals();
        let (i, node) = self
            .nodes
            .iter()
            .enumerate()
            .find(|(_, nd)| nd.name.eq_ignore_ascii_case(attr))?;
        let probs = &marginals[i];
        let out = probs
            .iter()
            .enumerate()
            .map(|(s, &p)| (self.state_value_repr(node, s), p))
            .collect();
        Some(out)
    }

    fn all_state_marginals(&self) -> Vec<Vec<f64>> {
        let mut out: Vec<Vec<f64>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let probs = match node.parent {
                None => node.cpt[0].clone(),
                Some(p) => {
                    let parent_probs = out[p].clone();
                    let mut probs = vec![0.0; node.cardinality];
                    for (u, &pu) in parent_probs.iter().enumerate() {
                        for (s, &psu) in node.cpt[u].iter().enumerate() {
                            probs[s] += pu * psu;
                        }
                    }
                    probs
                }
            };
            out.push(probs);
        }
        out
    }

    fn state_value_repr(&self, node: &Node, state: usize) -> Value {
        match &node.decode {
            Decode::Categorical(values) => values.get(state).cloned().unwrap_or(Value::Null),
            Decode::Binned { binner, integer } => {
                let mid = binner.midpoint(state);
                if *integer {
                    Value::Int(mid.round() as i64)
                } else {
                    Value::Float(mid)
                }
            }
        }
    }

    /// Draw `n` rows by ancestral sampling. Continuous states decode
    /// uniformly within their bin; integer columns round.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Table {
        let mut builder = TableBuilder::with_capacity(std::sync::Arc::clone(&self.schema), n);
        // Map topological order back to schema order for row assembly.
        let schema_pos: Vec<usize> = self
            .nodes
            .iter()
            .map(|node| self.schema.index_of(&node.name).expect("node from schema"))
            .collect();
        let mut states = vec![0usize; self.nodes.len()];
        for _ in 0..n {
            let mut row = vec![Value::Null; self.schema.len()];
            for (i, node) in self.nodes.iter().enumerate() {
                let dist = match node.parent {
                    None => &node.cpt[0],
                    Some(p) => &node.cpt[states[p]],
                };
                let mut u: f64 = rng.random();
                let mut chosen = node.cardinality - 1;
                for (s, &p) in dist.iter().enumerate() {
                    if u < p {
                        chosen = s;
                        break;
                    }
                    u -= p;
                }
                states[i] = chosen;
                row[schema_pos[i]] = match &node.decode {
                    Decode::Categorical(values) => {
                        values.get(chosen).cloned().unwrap_or(Value::Null)
                    }
                    Decode::Binned { binner, integer } => {
                        let (lo, hi) = binner.edges(chosen);
                        let x = lo + rng.random::<f64>() * (hi - lo);
                        if *integer {
                            Value::Int(x.round() as i64)
                        } else {
                            Value::Float(x)
                        }
                    }
                };
            }
            builder.push_row(row).expect("row matches schema");
        }
        builder.finish()
    }
}

/// Weighted mutual information between two discretized columns.
fn mutual_information(a: &[usize], b: &[usize], w: &[f64], card_a: usize, card_b: usize) -> f64 {
    let total: f64 = w.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut joint = vec![0.0; card_a * card_b];
    let mut pa = vec![0.0; card_a];
    let mut pb = vec![0.0; card_b];
    for ((&x, &y), &wi) in a.iter().zip(b).zip(w) {
        joint[x * card_b + y] += wi;
        pa[x] += wi;
        pb[y] += wi;
    }
    let mut mi = 0.0;
    for x in 0..card_a {
        for y in 0..card_b {
            let pxy = joint[x * card_b + y] / total;
            if pxy > 0.0 {
                let px = pa[x] / total;
                let py = pb[y] / total;
                mi += pxy * (pxy / (px * py)).ln();
            }
        }
    }
    mi
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_storage::{DataType, Field, Schema, TableBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A sample where y is a noisy copy of x and z is independent noise.
    fn correlated_sample(n: usize) -> Table {
        let schema = Schema::new(vec![
            Field::new("x", DataType::Str),
            Field::new("y", DataType::Str),
            Field::new("z", DataType::Str),
        ]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = TableBuilder::new(schema);
        for _ in 0..n {
            let x = if rng.random::<f64>() < 0.5 { "a" } else { "b" };
            let y = if rng.random::<f64>() < 0.9 { x } else { "a" };
            let z = if rng.random::<f64>() < 0.5 { "p" } else { "q" };
            b.push_row(vec![x.into(), y.into(), z.into()]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn chow_liu_links_correlated_attrs() {
        let t = correlated_sample(2000);
        let bn = BayesNet::fit(&t, None, &BnConfig::default()).unwrap();
        let edges = bn.edges();
        // x and y are strongly dependent: the tree must contain the x—y edge.
        assert!(
            edges
                .iter()
                .any(|(c, p)| { (c == "x" && p == "y") || (c == "y" && p == "x") }),
            "edges: {edges:?}"
        );
    }

    #[test]
    fn node_marginal_matches_data() {
        let t = correlated_sample(2000);
        let bn = BayesNet::fit(&t, None, &BnConfig::default()).unwrap();
        let m = bn.node_marginal("x").unwrap();
        let pa = m
            .iter()
            .find(|(v, _)| v == &Value::Str("a".into()))
            .map(|(_, p)| *p)
            .unwrap();
        assert!((pa - 0.5).abs() < 0.05, "P(x=a) = {pa}");
        let total: f64 = m.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampling_reproduces_joint_dependence() {
        let t = correlated_sample(4000);
        let bn = BayesNet::fit(&t, None, &BnConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let s = bn.sample(4000, &mut rng);
        // P(y == x) should be ~0.95 (0.9 + 0.1·P(x=a)), strongly > 0.5.
        let xs = s.column_by_name("x").unwrap();
        let ys = s.column_by_name("y").unwrap();
        let agree = (0..s.num_rows())
            .filter(|&r| xs.value(r) == ys.value(r))
            .count() as f64
            / s.num_rows() as f64;
        assert!(agree > 0.85, "agreement {agree}");
    }

    #[test]
    fn weights_shift_the_learned_marginal() {
        let schema = Schema::new(vec![Field::new("c", DataType::Str)]);
        let mut b = TableBuilder::new(schema);
        for v in ["a", "a", "a", "b"] {
            b.push_row(vec![v.into()]).unwrap();
        }
        let t = b.finish();
        // Weights say the population is 50/50 despite the 3:1 sample.
        let w = [1.0, 1.0, 1.0, 9.0];
        let bn = BayesNet::fit(&t, Some(&w), &BnConfig::default()).unwrap();
        let m = bn.node_marginal("c").unwrap();
        let pb = m
            .iter()
            .find(|(v, _)| v == &Value::Str("b".into()))
            .map(|(_, p)| *p)
            .unwrap();
        assert!((pb - 0.75).abs() < 0.05, "P(c=b) = {pb}");
    }

    #[test]
    fn continuous_attributes_binned_and_decoded() {
        let schema = Schema::new(vec![Field::new("v", DataType::Float)]);
        let mut b = TableBuilder::new(schema);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            b.push_row(vec![(rng.random::<f64>() * 10.0).into()])
                .unwrap();
        }
        let t = b.finish();
        let bn = BayesNet::fit(&t, None, &BnConfig::default()).unwrap();
        let s = bn.sample(1000, &mut rng);
        let (min, max) = s.column_by_name("v").unwrap().numeric_range().unwrap();
        assert!(min >= -0.5 && max <= 10.5, "range [{min}, {max}]");
        let mean: f64 = (0..1000)
            .map(|r| s.column(0).f64_at(r).unwrap())
            .sum::<f64>()
            / 1000.0;
        assert!((mean - 5.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn empty_sample_rejected() {
        let schema = Schema::new(vec![Field::new("v", DataType::Float)]);
        let t = Table::empty(schema);
        assert!(matches!(
            BayesNet::fit(&t, None, &BnConfig::default()),
            Err(BnError::EmptySample)
        ));
    }

    #[test]
    fn integer_columns_sample_integers() {
        let schema = Schema::new(vec![Field::new("k", DataType::Int)]);
        let mut b = TableBuilder::new(schema);
        for i in 0..100i64 {
            b.push_row(vec![(i % 10).into()]).unwrap();
        }
        let t = b.finish();
        let bn = BayesNet::fit(&t, None, &BnConfig::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let s = bn.sample(50, &mut rng);
        for r in 0..50 {
            assert!(matches!(s.value(r, 0), Value::Int(_)));
        }
    }
}
