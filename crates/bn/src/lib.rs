//! # mosaic-bn
//!
//! A Chow–Liu tree Bayesian network — the *explicitly defined* generative
//! model the Mosaic paper contrasts with its M-SWG (§4.2: "if we model the
//! probability distribution as a Bayesian network, we can answer COUNT(*)
//! queries using direct inference over the network"), and the approach its
//! predecessor system Themis merges with IPF.
//!
//! The intended workflow (Themis-style) is:
//!
//! 1. reweight the biased sample with IPF against the published marginals
//!    (`mosaic_stats::Ipf`),
//! 2. fit a [`BayesNet`] on the *reweighted* sample ([`BayesNet::fit`]),
//! 3. answer OPEN queries either by ancestral sampling
//!    ([`BayesNet::sample`]) or by exact tree inference for single-node
//!    marginals ([`BayesNet::node_marginal`]).
//!
//! The structure learner maximizes total pairwise mutual information
//! (Chow–Liu), which is optimal among trees; CPTs use Laplace smoothing.

mod model;

pub use model::{BayesNet, BnConfig, BnError};
