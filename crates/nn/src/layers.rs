use rand::Rng;

use crate::{Matrix, Param};

/// A neural-network layer with manual backprop.
///
/// `forward` caches whatever `backward` needs; `backward` accumulates
/// parameter gradients and returns the gradient with respect to its input.
pub trait Layer {
    /// Forward pass. `train` toggles training-time behaviour (batch-norm
    /// batch statistics vs. running statistics).
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix;

    /// Evaluation-mode forward pass without mutation: no activation
    /// caching, batch-norm uses running statistics. Because it borrows
    /// `&self`, a fitted network can run inference from many threads at
    /// once (the engine generates OPEN-query replicates in parallel).
    fn forward_eval(&self, input: &Matrix) -> Matrix;

    /// Backward pass: consumes `dL/d output`, accumulates parameter grads,
    /// returns `dL/d input`. Must be called after a `forward` with
    /// `train = true`.
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Trainable parameters (empty for parameterless layers).
    fn params_mut(&mut self) -> Vec<&mut Param>;
}

/// Fully-connected layer `y = x·W + b` with He-normal initialization.
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Param,
    bias: Param,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// New dense layer `in_dim → out_dim`, He-initialized (appropriate for
    /// the ReLU stacks the paper's generator uses).
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Dense {
        let std = (2.0 / in_dim as f64).sqrt();
        Dense {
            weight: Param::new(Matrix::randn(in_dim, out_dim, std, rng)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
            cached_input: None,
        }
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weight.value.cols()
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        if train {
            self.cached_input = Some(input.clone());
        }
        self.forward_eval(input)
    }

    fn forward_eval(&self, input: &Matrix) -> Matrix {
        let mut out = input.matmul(&self.weight.value);
        out.add_row_broadcast(&self.bias.value);
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            .expect("backward before forward(train=true)");
        self.weight.grad.add_assign(&input.matmul_tn(grad_output));
        self.bias.grad.add_assign(&grad_output.col_sum());
        grad_output.matmul_nt(&self.weight.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// Rectified linear unit.
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
    shape: (usize, usize),
}

impl Relu {
    /// New ReLU.
    pub fn new() -> Relu {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        if train {
            self.mask = Some(input.data().iter().map(|&x| x > 0.0).collect());
            self.shape = (input.rows(), input.cols());
        }
        self.forward_eval(input)
    }

    fn forward_eval(&self, input: &Matrix) -> Matrix {
        input.map(|x| x.max(0.0))
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mask = self.mask.as_ref().expect("backward before forward");
        let data = grad_output
            .data()
            .iter()
            .zip(mask)
            .map(|(&g, &m)| if m { g } else { 0.0 })
            .collect();
        Matrix::from_vec(self.shape.0, self.shape.1, data)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

/// 1-D batch normalization with learnable scale/shift and running
/// statistics for evaluation mode (the paper applies "batch normalization
/// after each layer").
#[derive(Debug, Clone)]
pub struct BatchNorm {
    gamma: Param,
    beta: Param,
    running_mean: Matrix,
    running_var: Matrix,
    momentum: f64,
    eps: f64,
    // training caches
    xhat: Option<Matrix>,
    centered: Option<Matrix>,
    inv_std: Option<Vec<f64>>,
}

impl BatchNorm {
    /// New batch-norm over `dim` features.
    pub fn new(dim: usize) -> BatchNorm {
        BatchNorm {
            gamma: Param::new(Matrix::from_vec(1, dim, vec![1.0; dim])),
            beta: Param::new(Matrix::zeros(1, dim)),
            running_mean: Matrix::zeros(1, dim),
            running_var: Matrix::from_vec(1, dim, vec![1.0; dim]),
            momentum: 0.1,
            eps: 1e-5,
            xhat: None,
            centered: None,
            inv_std: None,
        }
    }
}

#[allow(clippy::needless_range_loop)]
impl Layer for BatchNorm {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        let (n, d) = (input.rows(), input.cols());
        if train {
            let mean = input.col_mean();
            let mut centered = input.clone();
            for r in 0..n {
                let row = centered.row_mut(r);
                for (x, m) in row.iter_mut().zip(mean.data()) {
                    *x -= m;
                }
            }
            let mut var = vec![0.0; d];
            for r in 0..n {
                for (v, &x) in var.iter_mut().zip(centered.row(r)) {
                    *v += x * x;
                }
            }
            for v in &mut var {
                *v /= n as f64;
            }
            let inv_std: Vec<f64> = var.iter().map(|&v| 1.0 / (v + self.eps).sqrt()).collect();
            let mut xhat = centered.clone();
            for r in 0..n {
                let row = xhat.row_mut(r);
                for (x, s) in row.iter_mut().zip(&inv_std) {
                    *x *= s;
                }
            }
            // Update running statistics.
            for j in 0..d {
                let rm = self.running_mean.get(0, j);
                let rv = self.running_var.get(0, j);
                self.running_mean.set(
                    0,
                    j,
                    (1.0 - self.momentum) * rm + self.momentum * mean.get(0, j),
                );
                self.running_var
                    .set(0, j, (1.0 - self.momentum) * rv + self.momentum * var[j]);
            }
            let mut out = xhat.clone();
            for r in 0..n {
                let row = out.row_mut(r);
                for j in 0..d {
                    row[j] = row[j] * self.gamma.value.get(0, j) + self.beta.value.get(0, j);
                }
            }
            self.xhat = Some(xhat);
            self.centered = Some(centered);
            self.inv_std = Some(inv_std);
            out
        } else {
            self.forward_eval(input)
        }
    }

    fn forward_eval(&self, input: &Matrix) -> Matrix {
        let (n, d) = (input.rows(), input.cols());
        let mut out = input.clone();
        for r in 0..n {
            let row = out.row_mut(r);
            for j in 0..d {
                let m = self.running_mean.get(0, j);
                let v = self.running_var.get(0, j);
                let xhat = (row[j] - m) / (v + self.eps).sqrt();
                row[j] = xhat * self.gamma.value.get(0, j) + self.beta.value.get(0, j);
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let xhat = self.xhat.as_ref().expect("backward before forward");
        let inv_std = self.inv_std.as_ref().expect("backward before forward");
        let (n, d) = (grad_output.rows(), grad_output.cols());
        let nf = n as f64;
        // Parameter grads.
        for j in 0..d {
            let mut dg = 0.0;
            let mut db = 0.0;
            for r in 0..n {
                dg += grad_output.get(r, j) * xhat.get(r, j);
                db += grad_output.get(r, j);
            }
            let g0 = self.gamma.grad.get(0, j);
            let b0 = self.beta.grad.get(0, j);
            self.gamma.grad.set(0, j, g0 + dg);
            self.beta.grad.set(0, j, b0 + db);
        }
        // Input grads (standard batch-norm backward, per feature):
        // dx = (gamma * inv_std / N) * (N*dy - sum(dy) - xhat * sum(dy*xhat))
        let mut dx = Matrix::zeros(n, d);
        for j in 0..d {
            let mut sum_dy = 0.0;
            let mut sum_dy_xhat = 0.0;
            for r in 0..n {
                sum_dy += grad_output.get(r, j);
                sum_dy_xhat += grad_output.get(r, j) * xhat.get(r, j);
            }
            let g = self.gamma.value.get(0, j);
            for r in 0..n {
                let dy = grad_output.get(r, j);
                let v = g * inv_std[j] / nf * (nf * dy - sum_dy - xhat.get(r, j) * sum_dy_xhat);
                dx.set(r, j, v);
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }
}

/// Softmax applied independently over disjoint column blocks; identity on
/// uncovered columns. The paper "add\[s\] a softmax layer for the categorical
/// variable" — each one-hot-encoded categorical attribute is a block.
#[derive(Debug, Clone)]
pub struct BlockSoftmax {
    /// `(start, len)` of each softmax block.
    blocks: Vec<(usize, usize)>,
    output: Option<Matrix>,
}

impl BlockSoftmax {
    /// New block softmax over the given `(start, len)` blocks.
    pub fn new(blocks: Vec<(usize, usize)>) -> BlockSoftmax {
        BlockSoftmax {
            blocks,
            output: None,
        }
    }
}

impl Layer for BlockSoftmax {
    fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        let out = self.forward_eval(input);
        if train {
            self.output = Some(out.clone());
        }
        out
    }

    fn forward_eval(&self, input: &Matrix) -> Matrix {
        let mut out = input.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for &(start, len) in &self.blocks {
                let slice = &mut row[start..start + len];
                let max = slice.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for x in slice.iter_mut() {
                    *x = (*x - max).exp();
                    sum += *x;
                }
                for x in slice.iter_mut() {
                    *x /= sum;
                }
            }
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let out = self.output.as_ref().expect("backward before forward");
        let mut dx = grad_output.clone();
        for r in 0..dx.rows() {
            for &(start, len) in &self.blocks {
                // dz_i = s_i * (g_i - sum_j g_j s_j)
                let s = &out.row(r)[start..start + len];
                let g = &grad_output.row(r)[start..start + len];
                let dot: f64 = s.iter().zip(g).map(|(si, gi)| si * gi).sum();
                let target = &mut dx.row_mut(r)[start..start + len];
                for i in 0..len {
                    target[i] = s[i] * (g[i] - dot);
                }
            }
        }
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check for a layer under loss
    /// `L = 0.5 * ||forward(x)||²`.
    fn grad_check_input<L: Layer>(layer: &mut L, x: &Matrix, tol: f64) {
        let out = layer.forward(x, true);
        let grad_out = out.clone(); // dL/dout = out for 0.5*||out||^2
        let dx = layer.backward(&grad_out);
        let eps = 1e-5;
        for idx in 0..x.data().len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let op = layer.forward(&xp, true);
            let lp: f64 = 0.5 * op.data().iter().map(|v| v * v).sum::<f64>();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let om = layer.forward(&xm, true);
            let lm: f64 = 0.5 * om.data().iter().map(|v| v * v).sum::<f64>();
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = dx.data()[idx];
            assert!(
                (numeric - analytic).abs() < tol * (1.0 + numeric.abs()),
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn dense_forward_shape_and_grad() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut layer = Dense::new(3, 4, &mut rng);
        let x = Matrix::randn(5, 3, 1.0, &mut rng);
        let y = layer.forward(&x, true);
        assert_eq!((y.rows(), y.cols()), (5, 4));
        grad_check_input(&mut layer, &x, 1e-4);
    }

    #[test]
    fn dense_param_grads_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Matrix::randn(4, 2, 1.0, &mut rng);
        let out = layer.forward(&x, true);
        layer.backward(&out.clone());
        let analytic = layer.params_mut()[0].grad.get(0, 0);
        let eps = 1e-5;
        let orig = layer.params_mut()[0].value.get(0, 0);
        layer.params_mut()[0].value.set(0, 0, orig + eps);
        let lp: f64 = 0.5
            * layer
                .forward(&x, false)
                .data()
                .iter()
                .map(|v| v * v)
                .sum::<f64>();
        layer.params_mut()[0].value.set(0, 0, orig - eps);
        let lm: f64 = 0.5
            * layer
                .forward(&x, false)
                .data()
                .iter()
                .map(|v| v * v)
                .sum::<f64>();
        layer.params_mut()[0].value.set(0, 0, orig);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - analytic).abs() < 1e-4 * (1.0 + numeric.abs()));
    }

    #[test]
    fn relu_zeroes_negatives_and_grads() {
        let mut layer = Relu::new();
        let x = Matrix::from_vec(1, 4, vec![-1.0, 2.0, -3.0, 4.0]);
        let y = layer.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let dx = layer.backward(&Matrix::from_vec(1, 4, vec![1.0; 4]));
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn batchnorm_normalizes_batch() {
        let mut layer = BatchNorm::new(2);
        let x = Matrix::from_vec(4, 2, vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0, 4.0, 40.0]);
        let y = layer.forward(&x, true);
        let mean = y.col_mean();
        assert!(mean.data().iter().all(|m| m.abs() < 1e-9));
        // Variance should be ~1 for each column.
        for j in 0..2 {
            let var: f64 = (0..4).map(|r| y.get(r, j).powi(2)).sum::<f64>() / 4.0;
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn batchnorm_grad_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = BatchNorm::new(3);
        // Scale/shift away from identity to exercise all terms.
        layer.params_mut()[0].value.set(0, 0, 1.5);
        layer.params_mut()[1].value.set(0, 1, -0.5);
        let x = Matrix::randn(6, 3, 2.0, &mut rng);
        grad_check_input(&mut layer, &x, 1e-3);
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut layer = BatchNorm::new(1);
        let x = Matrix::from_vec(4, 1, vec![10.0, 12.0, 8.0, 10.0]);
        for _ in 0..200 {
            layer.forward(&x, true);
        }
        // After many identical batches, running stats converge to batch stats,
        // so eval output ≈ train output.
        let eval = layer.forward(&x, false);
        let train = layer.forward(&x, true);
        for (a, b) in eval.data().iter().zip(train.data()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn block_softmax_rows_sum_to_one() {
        let mut layer = BlockSoftmax::new(vec![(0, 3)]);
        let x = Matrix::from_vec(2, 4, vec![1.0, 2.0, 3.0, 7.0, -1.0, 0.0, 1.0, 9.0]);
        let y = layer.forward(&x, true);
        for r in 0..2 {
            let s: f64 = y.row(r)[..3].iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert_eq!(y.get(r, 3), x.get(r, 3)); // identity outside blocks
        }
    }

    #[test]
    fn block_softmax_grad_check() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = BlockSoftmax::new(vec![(0, 3), (4, 2)]);
        let x = Matrix::randn(3, 6, 1.0, &mut rng);
        grad_check_input(&mut layer, &x, 1e-4);
    }
}
