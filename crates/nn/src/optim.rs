use crate::Matrix;

/// A trainable parameter: value, gradient accumulator, and Adam moment
/// estimates.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Matrix,
    /// Accumulated gradient (zeroed by [`Adam::step`]).
    pub grad: Matrix,
    m: Matrix,
    v: Matrix,
}

impl Param {
    /// Wrap an initial value.
    pub fn new(value: Matrix) -> Param {
        let (r, c) = (value.rows(), value.cols());
        Param {
            value,
            grad: Matrix::zeros(r, c),
            m: Matrix::zeros(r, c),
            v: Matrix::zeros(r, c),
        }
    }

    /// Zero the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad = Matrix::zeros(self.value.rows(), self.value.cols());
    }
}

/// The Adam optimizer (Kingma & Ba) with PyTorch-default hyperparameters —
/// the paper trains the M-SWG with "Pytorch's Adam optimizer with the
/// default settings".
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (mutated by [`PlateauScheduler`]).
    pub lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
}

impl Adam {
    /// Adam with the PyTorch defaults (`β₁=0.9`, `β₂=0.999`, `ε=1e-8`).
    pub fn new(lr: f64) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Apply one update to every parameter and zero their gradients.
    pub fn step<'a>(&mut self, params: impl IntoIterator<Item = &'a mut Param>) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params {
            let g = p.grad.data().to_vec();
            let m = p.m.data_mut();
            let v = p.v.data_mut();
            for i in 0..g.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
            }
            let mhat_scale = 1.0 / bc1;
            let vhat_scale = 1.0 / bc2;
            let lr = self.lr;
            let eps = self.eps;
            let m = p.m.data().to_vec();
            let v = p.v.data().to_vec();
            let w = p.value.data_mut();
            for i in 0..m.len() {
                let mhat = m[i] * mhat_scale;
                let vhat = v[i] * vhat_scale;
                w[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            p.zero_grad();
        }
    }
}

/// Reduce-on-plateau learning-rate schedule: if the loss has not improved
/// by `threshold` for `patience` consecutive observations, multiply the
/// learning rate by `factor` (paper: "an initial learning rate of 0.001
/// that decreases by a factor of 10 if a plateau is reached").
#[derive(Debug, Clone)]
pub struct PlateauScheduler {
    best: f64,
    patience: usize,
    since_best: usize,
    factor: f64,
    threshold: f64,
    min_lr: f64,
}

impl PlateauScheduler {
    /// PyTorch-like defaults: `factor=0.1`, `patience=10`, `min_lr=1e-8`.
    pub fn new() -> PlateauScheduler {
        PlateauScheduler {
            best: f64::INFINITY,
            patience: 10,
            since_best: 0,
            factor: 0.1,
            threshold: 1e-4,
            min_lr: 1e-8,
        }
    }

    /// Customize patience (observations without improvement before decay).
    pub fn with_patience(mut self, patience: usize) -> Self {
        self.patience = patience;
        self
    }

    /// Observe a loss; decays `optimizer.lr` when plateaued. Returns true
    /// if a decay was applied.
    pub fn step(&mut self, loss: f64, optimizer: &mut Adam) -> bool {
        if loss < self.best - self.threshold {
            self.best = loss;
            self.since_best = 0;
            return false;
        }
        self.since_best += 1;
        if self.since_best > self.patience {
            optimizer.lr = (optimizer.lr * self.factor).max(self.min_lr);
            self.since_best = 0;
            true
        } else {
            false
        }
    }
}

impl Default for PlateauScheduler {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize (w - 3)^2 with Adam.
        let mut p = Param::new(Matrix::zeros(1, 1));
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let w = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * (w - 3.0));
            opt.step(std::iter::once(&mut p));
        }
        assert!((p.value.get(0, 0) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn step_zeroes_grads() {
        let mut p = Param::new(Matrix::zeros(2, 2));
        p.grad.set(0, 0, 1.0);
        let mut opt = Adam::new(0.01);
        opt.step(std::iter::once(&mut p));
        assert_eq!(p.grad.get(0, 0), 0.0);
    }

    #[test]
    fn plateau_decays_after_patience() {
        let mut opt = Adam::new(1.0);
        let mut sched = PlateauScheduler::new().with_patience(2);
        assert!(!sched.step(1.0, &mut opt)); // best = 1.0
        assert!(!sched.step(1.0, &mut opt)); // stall 1
        assert!(!sched.step(1.0, &mut opt)); // stall 2
        assert!(sched.step(1.0, &mut opt)); // stall 3 > patience -> decay
        assert!((opt.lr - 0.1).abs() < 1e-12);
    }

    #[test]
    fn plateau_resets_on_improvement() {
        let mut opt = Adam::new(1.0);
        let mut sched = PlateauScheduler::new().with_patience(1);
        sched.step(1.0, &mut opt);
        sched.step(1.0, &mut opt);
        sched.step(0.5, &mut opt); // improvement resets the stall counter
        assert!(!sched.step(0.5, &mut opt));
        assert_eq!(opt.lr, 1.0);
    }
}
