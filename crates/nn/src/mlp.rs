use rand::Rng;

use crate::{BatchNorm, BlockSoftmax, Dense, Layer, Matrix, Param, Relu};

/// A sequential feed-forward network.
///
/// The M-SWG generator (paper §5.3, footnote 3) is a stack of
/// `Dense → ReLU → BatchNorm` groups followed by a final `Dense` and an
/// optional [`BlockSoftmax`] head for one-hot categorical blocks;
/// [`Mlp::generator`] builds exactly that shape.
pub struct Mlp {
    layers: Vec<Box<dyn Layer + Send + Sync>>,
}

impl Mlp {
    /// Empty network.
    pub fn new() -> Mlp {
        Mlp { layers: Vec::new() }
    }

    /// Append a layer.
    pub fn push(&mut self, layer: impl Layer + Send + Sync + 'static) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// The paper's generator architecture: `hidden_layers` ReLU
    /// fully-connected layers of width `hidden_dim` with batch
    /// normalization after each, a linear output of `out_dim`, and a
    /// softmax over each categorical block.
    pub fn generator<R: Rng + ?Sized>(
        latent_dim: usize,
        hidden_dim: usize,
        hidden_layers: usize,
        out_dim: usize,
        softmax_blocks: Vec<(usize, usize)>,
        rng: &mut R,
    ) -> Mlp {
        let mut mlp = Mlp::new();
        let mut prev = latent_dim;
        for _ in 0..hidden_layers {
            mlp.push(Dense::new(prev, hidden_dim, rng));
            mlp.push(Relu::new());
            mlp.push(BatchNorm::new(hidden_dim));
            prev = hidden_dim;
        }
        mlp.push(Dense::new(prev, out_dim, rng));
        if !softmax_blocks.is_empty() {
            mlp.push(BlockSoftmax::new(softmax_blocks));
        }
        mlp
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass through every layer.
    pub fn forward(&mut self, input: &Matrix, train: bool) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train);
        }
        x
    }

    /// Evaluation-mode forward pass without mutation (shared-reference
    /// inference; see [`Layer::forward_eval`]).
    pub fn forward_eval(&self, input: &Matrix) -> Matrix {
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.forward_eval(&x);
        }
        x
    }

    /// Backward pass (after a `forward(…, true)`), accumulating parameter
    /// gradients; returns the gradient w.r.t. the network input.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// All trainable parameters.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&mut self) -> usize {
        self.params_mut()
            .iter()
            .map(|p| p.value.rows() * p.value.cols())
            .sum()
    }
}

impl Default for Mlp {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generator_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Mlp::generator(2, 16, 3, 5, vec![(0, 3)], &mut rng);
        let z = Matrix::randn(7, 2, 1.0, &mut rng);
        let out = g.forward(&z, true);
        assert_eq!((out.rows(), out.cols()), (7, 5));
        // Softmax head: first 3 columns of each row sum to 1.
        for r in 0..7 {
            let s: f64 = out.row(r)[..3].iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
        // 3 hidden groups of (dense, relu, bn) + final dense + softmax = 11.
        assert_eq!(g.num_layers(), 11);
        assert!(g.num_parameters() > 0);
    }

    #[test]
    fn mlp_gradient_check_end_to_end() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = Mlp::new();
        g.push(Dense::new(3, 8, &mut rng));
        g.push(Relu::new());
        g.push(Dense::new(8, 2, &mut rng));
        let x = Matrix::randn(4, 3, 1.0, &mut rng);
        let out = g.forward(&x, true);
        let dx = g.backward(&out.clone());
        let eps = 1e-5;
        for idx in 0..x.data().len() {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let lp: f64 = 0.5
                * g.forward(&xp, true)
                    .data()
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let lm: f64 = 0.5
                * g.forward(&xm, true)
                    .data()
                    .iter()
                    .map(|v| v * v)
                    .sum::<f64>();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - dx.data()[idx]).abs() < 1e-4 * (1.0 + numeric.abs()),
                "idx {idx}"
            );
        }
    }

    #[test]
    fn mlp_learns_a_linear_map() {
        // Train y = 2x - 1 on a tiny MLP; loss should fall dramatically.
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = Mlp::new();
        g.push(Dense::new(1, 16, &mut rng));
        g.push(Relu::new());
        g.push(Dense::new(16, 1, &mut rng));
        let mut opt = Adam::new(0.01);
        let x = Matrix::from_vec(8, 1, (0..8).map(|i| i as f64 / 4.0).collect());
        let target = x.map(|v| 2.0 * v - 1.0);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..400 {
            let out = g.forward(&x, true);
            let mut grad = out.clone();
            let mut loss = 0.0;
            for i in 0..grad.data().len() {
                let d = out.data()[i] - target.data()[i];
                loss += d * d;
                grad.data_mut()[i] = 2.0 * d / grad.data().len() as f64;
            }
            g.backward(&grad);
            opt.step(g.params_mut());
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(last_loss < first_loss.unwrap() * 0.01, "loss {last_loss}");
    }
}
