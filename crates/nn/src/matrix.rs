use rand::Rng;

/// A row-major dense `f64` matrix.
///
/// Only the kernels a small MLP needs are provided; hot loops are written
/// in the cache-friendly i-k-j order.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a flat row-major vector.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "matrix shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Gaussian-initialized matrix with standard deviation `std`
    /// (Box–Muller; avoids a `rand_distr` dependency).
    pub fn randn<R: Rng + ?Sized>(rows: usize, cols: usize, std: f64, rng: &mut R) -> Matrix {
        let data = (0..rows * cols)
            .map(|_| {
                let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.random::<f64>();
                std * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect();
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Set element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// `self · other` (`(n×k) · (k×m) → n×m`).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` (`(n×k)ᵀ · (n×m) → k×m`) without materializing the
    /// transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for n in 0..self.rows {
            let a_row = self.row(n);
            let b_row = other.row(n);
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[k * other.cols..(k + 1) * other.cols];
                for (j, &b) in b_row.iter().enumerate() {
                    out_row[j] += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` (`(n×k) · (m×k)ᵀ → n×m`).
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for k in 0..self.cols {
                    acc += a_row[k] * b_row[k];
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, factor: f64) {
        for a in &mut self.data {
            *a *= factor;
        }
    }

    /// Add a `1×cols` row vector to every row (bias add).
    pub fn add_row_broadcast(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1);
        assert_eq!(bias.cols, self.cols);
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (x, b) in row.iter_mut().zip(&bias.data) {
                *x += b;
            }
        }
    }

    /// Column sums as a `1×cols` matrix.
    pub fn col_sum(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &x) in out.data.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Column means as a `1×cols` matrix.
    pub fn col_mean(&self) -> Matrix {
        let mut s = self.col_sum();
        if self.rows > 0 {
            s.scale(1.0 / self.rows as f64);
        }
        s
    }

    /// Apply `f` element-wise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_small() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_transpose_then_matmul() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::randn(4, 3, 1.0, &mut rng);
        let b = Matrix::randn(4, 5, 1.0, &mut rng);
        let tn = a.matmul_tn(&b);
        // Manual transpose.
        let mut at = Matrix::zeros(3, 4);
        for r in 0..4 {
            for c in 0..3 {
                at.set(c, r, a.get(r, c));
            }
        }
        let expect = at.matmul(&b);
        for (x, y) in tn.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::randn(3, 4, 1.0, &mut rng);
        let b = Matrix::randn(5, 4, 1.0, &mut rng);
        let nt = a.matmul_nt(&b);
        let mut bt = Matrix::zeros(4, 5);
        for r in 0..5 {
            for c in 0..4 {
                bt.set(c, r, b.get(r, c));
            }
        }
        let expect = a.matmul(&bt);
        for (x, y) in nt.data().iter().zip(expect.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn broadcast_and_reductions() {
        let mut m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        m.add_row_broadcast(&Matrix::from_vec(1, 2, vec![10.0, 20.0]));
        assert_eq!(m.data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(m.col_sum().data(), &[24.0, 46.0]);
        assert_eq!(m.col_mean().data(), &[12.0, 23.0]);
    }

    #[test]
    fn randn_reasonable_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Matrix::randn(100, 100, 2.0, &mut rng);
        let mean = m.data().iter().sum::<f64>() / 10_000.0;
        let var = m.data().iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.1);
        assert!((var - 4.0).abs() < 0.3);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
