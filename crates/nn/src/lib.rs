//! # mosaic-nn
//!
//! A minimal dense neural-network framework with manual backpropagation —
//! the substrate for Mosaic's Marginal-Constrained Sliced Wasserstein
//! Generator (paper §5; the authors used PyTorch, we build the equivalent
//! pieces from scratch):
//!
//! * [`Matrix`] — row-major dense matrices with the handful of BLAS-like
//!   kernels a small MLP needs,
//! * [`Dense`], [`Relu`], [`BatchNorm`], [`BlockSoftmax`] — the layers used
//!   by the paper's generator ("3 ReLU FC layers with 100 nodes each …
//!   batch normalization after each layer … a softmax layer for the
//!   categorical variable"),
//! * [`Mlp`] — a sequential container with forward/backward,
//! * [`Adam`] — the Adam optimizer with PyTorch-default hyperparameters,
//! * [`PlateauScheduler`] — "an initial learning rate of 0.001 that
//!   decreases by a factor of 10 if a plateau is reached during training".
//!
//! The framework is deliberately small: generators in this problem domain
//! are a few dense layers wide (50–200 units), so clarity and testability
//! (gradient checks, property tests) beat generality.

mod layers;
mod matrix;
mod mlp;
mod optim;

pub use layers::{BatchNorm, BlockSoftmax, Dense, Layer, Relu};
pub use matrix::Matrix;
pub use mlp::Mlp;
pub use optim::{Adam, Param, PlateauScheduler};
