use std::fmt;

use mosaic_storage::{DataType, Field, Value};

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};

/// A parse error with the byte offset of the offending token.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset in the source.
    pub offset: usize,
}

impl ParseError {
    pub(crate) fn new(message: String, offset: usize) -> Self {
        ParseError { message, offset }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a semicolon-separated script into statements.
pub fn parse(src: &str) -> Result<Vec<Statement>, ParseError> {
    Ok(parse_spanned(src)?.into_iter().map(|(s, _)| s).collect())
}

/// Parse a semicolon-separated script, returning each statement together
/// with its byte span in `src` (used by shells to report *which*
/// statement of a multi-statement input failed).
pub fn parse_spanned(src: &str) -> Result<Vec<(Statement, std::ops::Range<usize>)>, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_param: 0,
    };
    let mut stmts = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.check_eof() {
            break;
        }
        let start = p.peek().offset;
        // Positional parameters are numbered per statement.
        p.next_param = 0;
        let stmt = p.statement()?;
        let end = p.peek().offset;
        stmts.push((stmt, start..end));
        if !p.eat(&TokenKind::Semicolon) && !p.check_eof() {
            return Err(p.unexpected("';' or end of input"));
        }
    }
    Ok(stmts)
}

/// Parse a standalone scalar expression (used by tests and programmatic
/// predicate construction).
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        next_param: 0,
    };
    let e = p.expr()?;
    if !p.check_eof() {
        return Err(p.unexpected("end of expression"));
    }
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Next positional-parameter index to hand out (`?` placeholders are
    /// numbered in lexical order within one statement).
    next_param: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, ahead: usize) -> &Token {
        &self.tokens[(self.pos + ahead).min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        self.pos += 1;
        t
    }

    fn check_eof(&self) -> bool {
        matches!(self.peek().kind, TokenKind::Eof)
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(self.unexpected(&kind.to_string()))
        }
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn at_kw_ahead(&self, ahead: usize, kw: &str) -> bool {
        matches!(&self.peek_at(ahead).kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(kw))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::new(
            format!("expected {expected}, found {}", self.peek().kind),
            self.peek().offset,
        )
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.at_kw("CREATE") {
            return self.create();
        }
        if self.at_kw("INSERT") {
            return self.insert();
        }
        if self.at_kw("SELECT") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.eat_kw("EXPLAIN") {
            return Ok(Statement::Explain(self.select()?));
        }
        if self.eat_kw("DROP") {
            // DROP TABLE|POPULATION|SAMPLE|METADATA <name>
            for k in ["TABLE", "POPULATION", "SAMPLE", "METADATA"] {
                if self.eat_kw(k) {
                    break;
                }
            }
            let name = self.ident()?;
            return Ok(Statement::Drop { name });
        }
        Err(self.unexpected("statement (CREATE, INSERT, SELECT, EXPLAIN, DROP)"))
    }

    fn create(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("CREATE")?;
        let temporary = self.eat_kw("TEMPORARY") || self.eat_kw("TEMP");
        if self.eat_kw("TABLE") {
            let name = self.ident()?;
            let fields = if matches!(self.peek().kind, TokenKind::LParen) {
                self.field_list()?
            } else {
                Vec::new()
            };
            return Ok(Statement::CreateTable {
                name,
                fields,
                temporary,
            });
        }
        let global = self.eat_kw("GLOBAL");
        if self.eat_kw("POPULATION") {
            return self.create_population(global);
        }
        if global {
            return Err(self.unexpected("POPULATION after GLOBAL"));
        }
        if self.eat_kw("SAMPLE") {
            return self.create_sample();
        }
        if self.eat_kw("METADATA") {
            return self.create_metadata();
        }
        Err(self.unexpected("TABLE, [GLOBAL] POPULATION, SAMPLE, or METADATA"))
    }

    fn create_population(&mut self, global: bool) -> Result<Statement, ParseError> {
        let name = self.ident()?;
        let fields = if matches!(self.peek().kind, TokenKind::LParen) && !self.as_select_ahead() {
            self.field_list()?
        } else {
            Vec::new()
        };
        let source = if self.eat_kw("AS") {
            let wrapped = self.eat(&TokenKind::LParen);
            self.expect_kw("SELECT")?;
            let columns = self.column_name_list()?;
            self.expect_kw("FROM")?;
            let gp = self.ident()?;
            let predicate = if self.eat_kw("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            if wrapped {
                self.expect(&TokenKind::RParen)?;
            }
            Some((gp, predicate, columns))
        } else {
            None
        };
        Ok(Statement::CreatePopulation {
            name,
            global,
            fields,
            source,
        })
    }

    fn create_sample(&mut self) -> Result<Statement, ParseError> {
        let name = self.ident()?;
        let fields = if matches!(self.peek().kind, TokenKind::LParen) && !self.as_select_ahead() {
            self.field_list()?
        } else {
            Vec::new()
        };
        self.expect_kw("AS")?;
        let wrapped = self.eat(&TokenKind::LParen);
        self.expect_kw("SELECT")?;
        let columns = self.column_name_list()?;
        self.expect_kw("FROM")?;
        let population = self.ident()?;
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mechanism = if self.eat_kw("USING") {
            self.expect_kw("MECHANISM")?;
            Some(self.mechanism()?)
        } else {
            None
        };
        if wrapped {
            self.expect(&TokenKind::RParen)?;
        }
        Ok(Statement::CreateSample {
            name,
            fields,
            population,
            columns,
            predicate,
            mechanism,
        })
    }

    fn mechanism(&mut self) -> Result<MechanismSpec, ParseError> {
        if self.eat_kw("UNIFORM") {
            self.expect_kw("PERCENT")?;
            let percent = self.number()?;
            return Ok(MechanismSpec::Uniform { percent });
        }
        if self.eat_kw("STRATIFIED") {
            self.expect_kw("ON")?;
            let attr = self.ident()?;
            self.expect_kw("PERCENT")?;
            let percent = self.number()?;
            return Ok(MechanismSpec::Stratified { attr, percent });
        }
        Err(self.unexpected("UNIFORM or STRATIFIED mechanism"))
    }

    fn create_metadata(&mut self) -> Result<Statement, ParseError> {
        let name = self.ident()?;
        let population = if self.eat_kw("FOR") {
            Some(self.ident()?)
        } else {
            None
        };
        self.expect_kw("AS")?;
        let wrapped = self.eat(&TokenKind::LParen);
        let query = self.select()?;
        if wrapped {
            self.expect(&TokenKind::RParen)?;
        }
        Ok(Statement::CreateMetadata {
            name,
            population,
            query,
        })
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_kw("INSERT")?;
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        // Optional column list: `(a, b, c)` — only if followed by idents.
        let columns = if matches!(self.peek().kind, TokenKind::LParen)
            && matches!(self.peek_at(1).kind, TokenKind::Ident(_))
            && !self.at_kw_ahead(1, "SELECT")
        {
            self.expect(&TokenKind::LParen)?;
            let mut cols = vec![self.ident()?];
            while self.eat(&TokenKind::Comma) {
                cols.push(self.ident()?);
            }
            self.expect(&TokenKind::RParen)?;
            Some(cols)
        } else {
            None
        };
        if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect(&TokenKind::LParen)?;
                let mut row = vec![self.expr()?];
                while self.eat(&TokenKind::Comma) {
                    row.push(self.expr()?);
                }
                self.expect(&TokenKind::RParen)?;
                rows.push(row);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            return Ok(Statement::Insert {
                table,
                columns,
                source: InsertSource::Values(rows),
            });
        }
        let wrapped = self.eat(&TokenKind::LParen);
        let select = self.select()?;
        if wrapped {
            self.expect(&TokenKind::RParen)?;
        }
        Ok(Statement::Insert {
            table,
            columns,
            source: InsertSource::Select(Box::new(select)),
        })
    }

    /// True if the upcoming `(` opens an `AS (SELECT …)` body rather than a
    /// field list. (We only call this when at `(`.)
    fn as_select_ahead(&self) -> bool {
        self.at_kw_ahead(1, "SELECT")
    }

    fn field_list(&mut self) -> Result<Vec<Field>, ParseError> {
        self.expect(&TokenKind::LParen)?;
        let mut fields = Vec::new();
        loop {
            let name = self.ident()?;
            let ty_name = self.ident()?;
            let offset = self.peek().offset;
            let data_type = DataType::parse_sql(&ty_name)
                .ok_or_else(|| ParseError::new(format!("unknown type {ty_name}"), offset))?;
            let mut nullable = true;
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
                nullable = false;
            } else {
                let _ = self.eat_kw("NULL");
            }
            fields.push(Field {
                name,
                data_type,
                nullable,
            });
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(fields)
    }

    /// Parse a comma-separated list of column names or `*` (for the
    /// restricted SELECT bodies of CREATE SAMPLE / CREATE POPULATION).
    fn column_name_list(&mut self) -> Result<Vec<String>, ParseError> {
        if self.eat(&TokenKind::Star) {
            return Ok(Vec::new());
        }
        let mut cols = vec![self.ident()?];
        while self.eat(&TokenKind::Comma) {
            cols.push(self.ident()?);
        }
        Ok(cols)
    }

    fn select(&mut self) -> Result<SelectStmt, ParseError> {
        self.expect_kw("SELECT")?;
        let visibility = self.visibility();
        let mut items = Vec::new();
        loop {
            if self.eat(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let from = if self.eat_kw("FROM") {
            let base = self.table_ref()?;
            let mut joins = Vec::new();
            loop {
                let kind = if self.at_kw("INNER") && self.at_kw_ahead(1, "JOIN") {
                    self.pos += 2;
                    JoinKind::Inner
                } else if self.at_kw("LEFT")
                    && self.at_kw_ahead(1, "OUTER")
                    && self.at_kw_ahead(2, "JOIN")
                {
                    self.pos += 3;
                    JoinKind::LeftOuter
                } else if self.at_kw("LEFT") && self.at_kw_ahead(1, "JOIN") {
                    self.pos += 2;
                    JoinKind::LeftOuter
                } else if self.eat_kw("JOIN") {
                    JoinKind::Inner
                } else {
                    break;
                };
                let table = self.table_ref()?;
                self.expect_kw("ON")?;
                let on = self.expr()?;
                joins.push(JoinClause { table, kind, on });
            }
            Some(FromClause { base, joins })
        } else {
            None
        };
        let where_clause = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let e = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    let _ = self.eat_kw("ASC");
                    false
                };
                order_by.push((e, desc));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            let offset = self.peek().offset;
            match self.advance().kind {
                TokenKind::Int(n) if n >= 0 => Some(n as usize),
                _ => {
                    return Err(ParseError::new(
                        "LIMIT expects a non-negative integer".into(),
                        offset,
                    ))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt {
            visibility,
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    /// Parse `name [[AS] alias]`. A bare following identifier is taken as
    /// an alias only when it is not a reserved clause keyword, so
    /// `FROM t WHERE …` still parses.
    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let name = self.ident()?;
        let alias = if self.eat_kw("AS")
            || matches!(&self.peek().kind, TokenKind::Ident(s) if !is_reserved(s))
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    fn visibility(&mut self) -> Option<Visibility> {
        if self.eat_kw("CLOSED") {
            return Some(Visibility::Closed);
        }
        // SEMI-OPEN lexes as Ident(SEMI) Minus Ident(OPEN); also accept
        // SEMI_OPEN and SEMIOPEN spellings.
        if self.at_kw("SEMI")
            && matches!(self.peek_at(1).kind, TokenKind::Minus)
            && self.at_kw_ahead(2, "OPEN")
        {
            self.pos += 3;
            return Some(Visibility::SemiOpen);
        }
        if self.eat_kw("SEMI_OPEN") || self.eat_kw("SEMIOPEN") {
            return Some(Visibility::SemiOpen);
        }
        // Bare OPEN only counts as a visibility marker when followed by
        // something that can start a projection (not `FROM` etc.): we treat
        // OPEN as a reserved visibility keyword after SELECT.
        if self.eat_kw("OPEN") {
            return Some(Visibility::Open);
        }
        None
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        let offset = self.peek().offset;
        match self.advance().kind {
            TokenKind::Int(i) => Ok(i as f64),
            TokenKind::Float(f) => Ok(f),
            other => Err(ParseError::new(
                format!("expected number, found {other}"),
                offset,
            )),
        }
    }

    // ---- expressions (precedence climbing) ----

    pub(crate) fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // [NOT] IN / [NOT] BETWEEN
        let negated =
            if self.at_kw("NOT") && (self.at_kw_ahead(1, "IN") || self.at_kw_ahead(1, "BETWEEN")) {
                self.pos += 1;
                true
            } else {
                false
            };
        if self.eat_kw("IN") {
            let close = if self.eat(&TokenKind::LParen) {
                TokenKind::RParen
            } else if self.eat(&TokenKind::LBracket) {
                TokenKind::RBracket
            } else {
                return Err(self.unexpected("'(' or '[' after IN"));
            };
            let mut list = vec![self.expr()?];
            while self.eat(&TokenKind::Comma) {
                list.push(self.expr()?);
            }
            self.expect(&close)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if negated {
            return Err(self.unexpected("IN or BETWEEN after NOT"));
        }
        let op = match self.peek().kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::NotEq => BinOp::NotEq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::LtEq => BinOp::LtEq,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::GtEq => BinOp::GtEq,
            _ => return Ok(left),
        };
        self.pos += 1;
        let right = self.additive()?;
        Ok(Expr::Binary {
            left: Box::new(left),
            op,
            right: Box::new(right),
        })
    }

    fn additive(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            // Constant-fold negative literals for cleaner ASTs.
            return Ok(match inner {
                Expr::Literal(Value::Int(i)) => Expr::Literal(Value::Int(-i)),
                Expr::Literal(Value::Float(f)) => Expr::Literal(Value::Float(-f)),
                other => Expr::Unary {
                    op: UnaryOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        if self.eat(&TokenKind::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let offset = self.peek().offset;
        match self.peek().kind.clone() {
            TokenKind::Int(i) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(i)))
            }
            TokenKind::Float(f) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(f)))
            }
            TokenKind::Str(s) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::LParen => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Question => {
                self.pos += 1;
                let i = self.next_param;
                self.next_param += 1;
                Ok(Expr::Param(i))
            }
            TokenKind::Ident(name) => {
                if is_reserved(&name) {
                    return Err(ParseError::new(
                        format!("expected expression, found keyword {name}"),
                        offset,
                    ));
                }
                self.pos += 1;
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    return Ok(Expr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    return Ok(Expr::Literal(Value::Bool(false)));
                }
                // Qualified column reference: `alias.column`. The binder
                // resolves the qualifier against the FROM scope.
                if matches!(self.peek().kind, TokenKind::Dot) {
                    if let TokenKind::Ident(field) = self.peek_at(1).kind.clone() {
                        if !is_reserved(&field) {
                            self.pos += 2;
                            return Ok(Expr::Column(format!("{name}.{field}")));
                        }
                    }
                }
                if matches!(self.peek().kind, TokenKind::LParen) {
                    // Function call — only aggregates are supported.
                    let func = AggFunc::from_name(&name).ok_or_else(|| {
                        ParseError::new(format!("unknown function {name}"), offset)
                    })?;
                    self.expect(&TokenKind::LParen)?;
                    if self.eat(&TokenKind::Star) {
                        self.expect(&TokenKind::RParen)?;
                        if func != AggFunc::Count {
                            return Err(ParseError::new(
                                format!("{}(*) is not supported; only COUNT(*)", func.name()),
                                offset,
                            ));
                        }
                        return Ok(Expr::Agg { func, arg: None });
                    }
                    let arg = self.expr()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Agg {
                        func,
                        arg: Some(Box::new(arg)),
                    });
                }
                Ok(Expr::Column(name))
            }
            other => Err(ParseError::new(
                format!("expected expression, found {other}"),
                offset,
            )),
        }
    }
}

/// Words that cannot appear as bare column references (clause keywords).
fn is_reserved(name: &str) -> bool {
    const RESERVED: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "ORDER",
        "BY",
        "LIMIT",
        "AS",
        "AND",
        "OR",
        "NOT",
        "IN",
        "BETWEEN",
        "IS",
        "CREATE",
        "EXPLAIN",
        "INSERT",
        "INTO",
        "VALUES",
        "DROP",
        "USING",
        "MECHANISM",
        "HAVING",
        "JOIN",
        "INNER",
        "LEFT",
        "OUTER",
        "ON",
    ];
    RESERVED.iter().any(|k| k.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Statement {
        let mut v = parse(src).unwrap();
        assert_eq!(v.len(), 1, "expected one statement");
        v.pop().unwrap()
    }

    #[test]
    fn parse_create_table() {
        match one("CREATE TEMPORARY TABLE Eurostat (country TEXT, reported_count INT);") {
            Statement::CreateTable {
                name,
                fields,
                temporary,
            } => {
                assert_eq!(name, "Eurostat");
                assert!(temporary);
                assert_eq!(fields.len(), 2);
                assert_eq!(fields[1].data_type, DataType::Int);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parse_create_global_population() {
        match one("CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT);") {
            Statement::CreatePopulation {
                name,
                global,
                fields,
                source,
            } => {
                assert_eq!(name, "EuropeMigrants");
                assert!(global);
                assert_eq!(fields.len(), 2);
                assert!(source.is_none());
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parse_derived_population() {
        match one(
            "CREATE POPULATION UkMigrants AS (SELECT * FROM EuropeMigrants WHERE country = 'UK');",
        ) {
            Statement::CreatePopulation { global, source, .. } => {
                assert!(!global);
                let (gp, pred, cols) = source.unwrap();
                assert_eq!(gp, "EuropeMigrants");
                assert!(pred.is_some());
                assert!(cols.is_empty());
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parse_create_sample_with_mechanism() {
        match one(
            "CREATE SAMPLE S AS (SELECT a, b FROM GP WHERE a > 1 USING MECHANISM STRATIFIED ON a PERCENT 20);",
        ) {
            Statement::CreateSample {
                population,
                columns,
                predicate,
                mechanism,
                ..
            } => {
                assert_eq!(population, "GP");
                assert_eq!(columns, vec!["a".to_string(), "b".into()]);
                assert!(predicate.is_some());
                assert_eq!(
                    mechanism,
                    Some(MechanismSpec::Stratified {
                        attr: "a".into(),
                        percent: 20.0
                    })
                );
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parse_paper_example_script() {
        // The full motivating example from §2 of the paper.
        let script = "
            CREATE TEMPORARY TABLE Eurostat (country TEXT, email TEXT, reported_count INT);
            CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT);
            CREATE METADATA EuropeMigrants_M1 AS
              (SELECT country, reported_count FROM Eurostat);
            CREATE METADATA EuropeMigrants_M2 AS
              (SELECT email, reported_count FROM Eurostat);
            CREATE SAMPLE YahooMigrants AS
              (SELECT * FROM EuropeMigrants WHERE email = 'Yahoo');
            SELECT SEMI-OPEN country, email, COUNT(*)
              FROM EuropeMigrants GROUP BY country, email;
            SELECT OPEN country, email, COUNT(*)
              FROM EuropeMigrants GROUP BY country, email;
        ";
        let stmts = parse(script).unwrap();
        assert_eq!(stmts.len(), 7);
        match &stmts[5] {
            Statement::Select(s) => assert_eq!(s.visibility, Some(Visibility::SemiOpen)),
            other => panic!("wrong statement: {other:?}"),
        }
        match &stmts[6] {
            Statement::Select(s) => assert_eq!(s.visibility, Some(Visibility::Open)),
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parse_visibility_variants() {
        for (src, expect) in [
            ("SELECT CLOSED a FROM t", Some(Visibility::Closed)),
            ("SELECT SEMI-OPEN a FROM t", Some(Visibility::SemiOpen)),
            ("SELECT SEMI_OPEN a FROM t", Some(Visibility::SemiOpen)),
            ("SELECT OPEN a FROM t", Some(Visibility::Open)),
            ("SELECT a FROM t", None),
        ] {
            match one(src) {
                Statement::Select(s) => assert_eq!(s.visibility, expect, "src: {src}"),
                other => panic!("wrong statement: {other:?}"),
            }
        }
    }

    #[test]
    fn parse_paper_table2_query() {
        // Query 5 of Table 2, with the paper's square-bracket IN list and
        // curly quotes.
        match one(
            "SELECT C, AVG(D) FROM F WHERE E > 200 AND C IN [\u{2018}WN\u{2019}, \u{2018}AA\u{2019}] GROUP BY C",
        ) {
            Statement::Select(s) => {
                assert_eq!(s.items.len(), 2);
                assert_eq!(s.group_by.len(), 1);
                let w = s.where_clause.unwrap();
                assert!(matches!(w, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parse_insert_values_and_select() {
        match one("INSERT INTO t VALUES (1, 'a'), (2, 'b')") {
            Statement::Insert {
                source: InsertSource::Values(rows),
                ..
            } => {
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][0], Expr::lit(2));
            }
            other => panic!("wrong statement: {other:?}"),
        }
        match one("INSERT INTO s SELECT a, b FROM aux WHERE a > 0") {
            Statement::Insert {
                source: InsertSource::Select(sel),
                ..
            } => {
                assert_eq!(sel.from.as_ref().and_then(FromClause::single), Some("aux"));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("a + b * 2 < 10 AND NOT c = 'x' OR d BETWEEN 1 AND 5").unwrap();
        // Top level must be OR.
        assert!(matches!(e, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn negative_literals_fold() {
        assert_eq!(parse_expr("-5").unwrap(), Expr::lit(-5));
        assert_eq!(parse_expr("-2.5").unwrap(), Expr::lit(-2.5));
    }

    #[test]
    fn order_by_and_limit() {
        match one("SELECT a FROM t ORDER BY a DESC, b LIMIT 10") {
            Statement::Select(s) => {
                assert_eq!(s.order_by.len(), 2);
                assert!(s.order_by[0].1);
                assert!(!s.order_by[1].1);
                assert_eq!(s.limit, Some(10));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn metadata_with_explicit_population() {
        match one("CREATE METADATA m FOR Pop AS (SELECT a, COUNT(*) FROM aux GROUP BY a)") {
            Statement::CreateMetadata {
                population, query, ..
            } => {
                assert_eq!(population.as_deref(), Some("Pop"));
                assert_eq!(query.group_by.len(), 1);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let err = parse("SELECT FROM").unwrap_err();
        assert!(err.offset > 0);
        assert!(parse("CREATE ELEPHANT x").is_err());
        assert!(parse_expr("1 +").is_err());
    }

    #[test]
    fn unknown_function_rejected() {
        assert!(parse_expr("MEDIAN(x)").is_err());
    }

    #[test]
    fn positional_params_number_lexically() {
        match one("SELECT a FROM t WHERE a > ? AND b IN (?, ?) ORDER BY a LIMIT 3") {
            Statement::Select(s) => {
                assert_eq!(s.param_count(), 3);
                let w = s.where_clause.as_ref().unwrap();
                assert_eq!(w.max_param(), Some(2));
                let bound = s
                    .bind_params(&[
                        Value::Int(1),
                        Value::Str("x".into()),
                        Value::Str("y".into()),
                    ])
                    .unwrap();
                assert_eq!(bound.param_count(), 0);
                // Out-of-range binding reports the missing index.
                assert_eq!(s.bind_params(&[Value::Int(1)]), Err(1));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn params_reset_per_statement() {
        let stmts = parse("SELECT a FROM t WHERE a > ?; SELECT b FROM t WHERE b < ?").unwrap();
        for s in &stmts {
            match s {
                Statement::Select(s) => assert_eq!(s.param_count(), 1),
                other => panic!("wrong statement: {other:?}"),
            }
        }
    }

    #[test]
    fn explain_parses() {
        match one("EXPLAIN SELECT SEMI-OPEN a, COUNT(*) FROM P GROUP BY a") {
            Statement::Explain(s) => {
                assert_eq!(s.visibility, Some(Visibility::SemiOpen));
                assert_eq!(s.from.as_ref().and_then(FromClause::single), Some("P"));
            }
            other => panic!("wrong statement: {other:?}"),
        }
        // EXPLAIN is reserved: not a bare column name.
        assert!(parse("SELECT explain FROM t").is_err());
    }

    #[test]
    fn spanned_statements_carry_source_ranges() {
        let src = "SELECT a FROM t;  SELECT b FROM u";
        let spanned = parse_spanned(src).unwrap();
        assert_eq!(spanned.len(), 2);
        assert_eq!(&src[spanned[0].1.clone()], "SELECT a FROM t");
        assert_eq!(&src[spanned[1].1.clone()], "SELECT b FROM u");
    }

    #[test]
    fn join_with_aliases_parses() {
        match one(
            "SELECT c.name, SUM(f.distance) FROM flights f JOIN carriers c \
             ON f.carrier = c.code GROUP BY c.name",
        ) {
            Statement::Select(s) => {
                let from = s.from.unwrap();
                assert_eq!(from.base.name, "flights");
                assert_eq!(from.base.binding(), "f");
                assert_eq!(from.joins.len(), 1);
                assert_eq!(from.joins[0].table.name, "carriers");
                assert_eq!(from.joins[0].table.binding(), "c");
                assert!(matches!(
                    from.joins[0].on,
                    Expr::Binary { op: BinOp::Eq, .. }
                ));
                // Qualified refs keep their dotted spelling for the binder.
                match &s.group_by[0] {
                    Expr::Column(c) => assert_eq!(c, "c.name"),
                    other => panic!("wrong group key: {other:?}"),
                }
            }
            other => panic!("wrong statement: {other:?}"),
        }
        // INNER is accepted and AS aliases work.
        match one("SELECT * FROM a AS x INNER JOIN b AS y ON x.k = y.k") {
            Statement::Select(s) => {
                let from = s.from.unwrap();
                assert_eq!(from.base.binding(), "x");
                assert_eq!(from.joins[0].table.binding(), "y");
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn single_table_from_stays_bare() {
        match one("SELECT a FROM t WHERE a > 1") {
            Statement::Select(s) => {
                let from = s.from.unwrap();
                assert_eq!(from.single(), Some("t"));
                assert!(!from.has_joins());
            }
            other => panic!("wrong statement: {other:?}"),
        }
        // An alias makes `single()` decline (the scope binder takes over).
        match one("SELECT f.a FROM t f") {
            Statement::Select(s) => {
                let from = s.from.unwrap();
                assert_eq!(from.single(), None);
                assert_eq!(from.base.binding(), "f");
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn join_on_is_required() {
        assert!(parse("SELECT * FROM a JOIN b").is_err());
        assert!(parse("SELECT * FROM a JOIN b WHERE x = 1").is_err());
    }

    #[test]
    fn params_in_on_count_lexically() {
        // ON parameters number between the SELECT list and WHERE.
        match one("SELECT a FROM t JOIN u ON t.k = u.k WHERE t.v > ? AND u.w < ?") {
            Statement::Select(s) => assert_eq!(s.param_count(), 2),
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn is_null_parses() {
        let e = parse_expr("x IS NOT NULL").unwrap();
        assert!(matches!(e, Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn not_in_parses() {
        let e = parse_expr("c NOT IN ('a', 'b')").unwrap();
        assert!(matches!(e, Expr::InList { negated: true, .. }));
    }
}
