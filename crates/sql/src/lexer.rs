use std::fmt;

/// A lexical token with its source offset (byte position, for error
/// reporting).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset in the source where the token starts.
    pub offset: usize,
}

/// Token kinds produced by [`tokenize`].
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized by the parser,
    /// case-insensitively).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (with `''` escape). Curly quotes
    /// (`‘…’`) from the paper's typesetting are also accepted.
    Str(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `[` (the paper writes IN-lists with square brackets).
    LBracket,
    /// `]`.
    RBracket,
    /// `,`.
    Comma,
    /// `;`.
    Semicolon,
    /// `*`.
    Star,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `=`.
    Eq,
    /// `!=` or `<>`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// `.`.
    Dot,
    /// `?` — a positional statement parameter.
    Question,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(i) => write!(f, "{i}"),
            TokenKind::Float(x) => write!(f, "{x}"),
            TokenKind::Str(s) => write!(f, "'{s}'"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Semicolon => write!(f, ";"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::Eq => write!(f, "="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::LtEq => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::GtEq => write!(f, ">="),
            TokenKind::Dot => write!(f, "."),
            TokenKind::Question => write!(f, "?"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenize SQL source. `--` line comments are skipped. Returns a trailing
/// [`TokenKind::Eof`] token.
pub fn tokenize(src: &str) -> Result<Vec<Token>, crate::ParseError> {
    let chars: Vec<char> = src.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    // Track byte offsets for error messages.
    let mut byte = 0usize;
    let advance = |c: char| c.len_utf8();
    while i < chars.len() {
        let c = chars[i];
        let start = byte;
        match c {
            c if c.is_whitespace() => {
                byte += advance(c);
                i += 1;
            }
            '-' if chars.get(i + 1) == Some(&'-') => {
                // Line comment.
                while i < chars.len() && chars[i] != '\n' {
                    byte += advance(chars[i]);
                    i += 1;
                }
            }
            '\'' | '\u{2018}' | '\u{2019}' => {
                // String literal; accept straight and curly quotes.
                byte += advance(c);
                i += 1;
                let mut s = String::new();
                let mut closed = false;
                while i < chars.len() {
                    let d = chars[i];
                    if d == '\'' || d == '\u{2019}' || d == '\u{2018}' {
                        if d == '\'' && chars.get(i + 1) == Some(&'\'') {
                            s.push('\'');
                            byte += 2;
                            i += 2;
                            continue;
                        }
                        byte += advance(d);
                        i += 1;
                        closed = true;
                        break;
                    }
                    s.push(d);
                    byte += advance(d);
                    i += 1;
                }
                if !closed {
                    return Err(crate::ParseError::new(
                        "unterminated string literal".into(),
                        start,
                    ));
                }
                tokens.push(Token {
                    kind: TokenKind::Str(s),
                    offset: start,
                });
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                let mut is_float = false;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_ascii_digit() {
                        s.push(d);
                    } else if d == '.' && chars.get(i + 1).is_some_and(char::is_ascii_digit) {
                        is_float = true;
                        s.push(d);
                    } else if (d == 'e' || d == 'E')
                        && chars
                            .get(i + 1)
                            .is_some_and(|n| n.is_ascii_digit() || *n == '-' || *n == '+')
                    {
                        is_float = true;
                        s.push(d);
                        // consume optional sign
                        if let Some(&sign) = chars.get(i + 1) {
                            if sign == '-' || sign == '+' {
                                s.push(sign);
                                byte += 1;
                                i += 1;
                            }
                        }
                    } else {
                        break;
                    }
                    byte += 1;
                    i += 1;
                }
                let kind = if is_float {
                    TokenKind::Float(s.parse().map_err(|_| {
                        crate::ParseError::new(format!("invalid float literal {s}"), start)
                    })?)
                } else {
                    TokenKind::Int(s.parse().map_err(|_| {
                        crate::ParseError::new(format!("invalid integer literal {s}"), start)
                    })?)
                };
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    s.push(chars[i]);
                    byte += advance(chars[i]);
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    offset: start,
                });
            }
            _ => {
                let (kind, width) = match c {
                    '(' => (TokenKind::LParen, 1),
                    ')' => (TokenKind::RParen, 1),
                    '[' => (TokenKind::LBracket, 1),
                    ']' => (TokenKind::RBracket, 1),
                    ',' => (TokenKind::Comma, 1),
                    ';' => (TokenKind::Semicolon, 1),
                    '*' => (TokenKind::Star, 1),
                    '+' => (TokenKind::Plus, 1),
                    '-' => (TokenKind::Minus, 1),
                    '/' => (TokenKind::Slash, 1),
                    '%' => (TokenKind::Percent, 1),
                    '=' => (TokenKind::Eq, 1),
                    '.' => (TokenKind::Dot, 1),
                    '?' => (TokenKind::Question, 1),
                    '!' if chars.get(i + 1) == Some(&'=') => (TokenKind::NotEq, 2),
                    '<' if chars.get(i + 1) == Some(&'>') => (TokenKind::NotEq, 2),
                    '<' if chars.get(i + 1) == Some(&'=') => (TokenKind::LtEq, 2),
                    '<' => (TokenKind::Lt, 1),
                    '>' if chars.get(i + 1) == Some(&'=') => (TokenKind::GtEq, 2),
                    '>' => (TokenKind::Gt, 1),
                    other => {
                        return Err(crate::ParseError::new(
                            format!("unexpected character {other:?}"),
                            start,
                        ))
                    }
                };
                for _ in 0..width {
                    byte += advance(chars[i]);
                    i += 1;
                }
                tokens.push(Token {
                    kind,
                    offset: start,
                });
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: byte,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let k = kinds("SELECT a, b FROM t WHERE x >= 1.5;");
        assert_eq!(k[0], TokenKind::Ident("SELECT".into()));
        assert!(k.contains(&TokenKind::GtEq));
        assert!(k.contains(&TokenKind::Float(1.5)));
        assert_eq!(*k.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn strings_with_escapes_and_curly_quotes() {
        assert_eq!(kinds("'ab''c'")[0], TokenKind::Str("ab'c".into()));
        assert_eq!(kinds("\u{2018}WN\u{2019}")[0], TokenKind::Str("WN".into()));
    }

    #[test]
    fn comments_skipped() {
        let k = kinds("SELECT 1 -- comment here\n, 2");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("SELECT".into()),
                TokenKind::Int(1),
                TokenKind::Comma,
                TokenKind::Int(2),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn question_mark_token() {
        let k = kinds("x > ? AND y = ?");
        assert_eq!(k.iter().filter(|t| **t == TokenKind::Question).count(), 2);
    }

    #[test]
    fn neq_variants() {
        assert_eq!(kinds("a != b")[1], TokenKind::NotEq);
        assert_eq!(kinds("a <> b")[1], TokenKind::NotEq);
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(kinds("1e-7")[0], TokenKind::Float(1e-7));
        assert_eq!(kinds("2.5E3")[0], TokenKind::Float(2500.0));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("'abc").is_err());
    }

    #[test]
    fn semi_open_tokenizes_as_three_tokens() {
        let k = kinds("SEMI-OPEN");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("SEMI".into()),
                TokenKind::Minus,
                TokenKind::Ident("OPEN".into()),
                TokenKind::Eof
            ]
        );
    }
}
