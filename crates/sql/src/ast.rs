use std::fmt;

use mosaic_storage::{Field, Value};

/// Query visibility level (paper §3.3): how much freedom Mosaic has to
/// reweight and create tuples when answering a population query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Visibility {
    /// Use the samples as-is (closed world; LAV data-integration answering).
    Closed,
    /// Reweight the samples (open world, no invented tuples; zero false
    /// positives, up to `n` false negatives).
    SemiOpen,
    /// Reweight and *generate* missing tuples (open world; fewer false
    /// negatives at the cost of possible false positives).
    Open,
}

impl fmt::Display for Visibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Visibility::Closed => "CLOSED",
            Visibility::SemiOpen => "SEMI-OPEN",
            Visibility::Open => "OPEN",
        };
        f.write_str(s)
    }
}

/// Aggregate functions supported by the executor. Under SEMI-OPEN/OPEN these
/// are rewritten to their weighted forms (paper §5.3: "we simply modify the
/// aggregate to be over a weight attribute").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)` → `SUM(weight)` over qualifying rows.
    Count,
    /// `SUM(expr)` → `SUM(weight · expr)`.
    Sum,
    /// `AVG(expr)` → weighted mean.
    Avg,
    /// `MIN(expr)` (weights don't change the minimum).
    Min,
    /// `MAX(expr)`.
    Max,
}

impl AggFunc {
    /// Parse an aggregate function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            _ => None,
        }
    }

    /// Canonical SQL name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// Binary operators, in increasing precedence groups (OR < AND < comparison
/// < additive < multiplicative).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// `=`.
    Eq,
    /// `!=` / `<>`.
    NotEq,
    /// `<`.
    Lt,
    /// `<=`.
    LtEq,
    /// `>`.
    Gt,
    /// `>=`.
    GtEq,
    /// `+`.
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Mod,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Or => "OR",
            BinOp::And => "AND",
            BinOp::Eq => "=",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// A scalar or aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference.
    Column(String),
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr [NOT] IN (v1, v2, …)` (square brackets also accepted, as in
    /// the paper's Table 2 queries).
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Inclusive lower bound.
        low: Box<Expr>,
        /// Inclusive upper bound.
        high: Box<Expr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// Aggregate call; `arg` is `None` for `COUNT(*)`.
    Agg {
        /// Aggregate function.
        func: AggFunc,
        /// Argument expression (None = `*`).
        arg: Option<Box<Expr>>,
    },
    /// A positional statement parameter (`?`), 0-indexed in lexical
    /// order. Parameters are bound to [`Value`]s at execution time by a
    /// prepared statement; evaluating an unbound parameter is an error.
    Param(usize),
}

impl Expr {
    /// Column reference shorthand.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `self AND other` shorthand.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op: BinOp::And,
            right: Box::new(other),
        }
    }

    /// True if the expression contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Literal(_) | Expr::Column(_) | Expr::Param(_) => false,
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
        }
    }

    /// Collect the names of all referenced columns (deduplicated, in first
    /// appearance order).
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut Vec<String>) {
        match self {
            Expr::Column(name) => {
                if !out.iter().any(|n| n.eq_ignore_ascii_case(name)) {
                    out.push(name.clone());
                }
            }
            Expr::Literal(_) | Expr::Param(_) => {}
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.collect_columns(out),
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.collect_columns(out);
                for e in list {
                    e.collect_columns(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.collect_columns(out);
                low.collect_columns(out);
                high.collect_columns(out);
            }
            Expr::Agg { arg, .. } => {
                if let Some(a) = arg {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// A display-ready name for this expression when used as an unaliased
    /// projection (e.g. `COUNT(*)`, `country`).
    pub fn default_name(&self) -> String {
        match self {
            Expr::Column(c) => c.clone(),
            Expr::Agg { func, arg } => match arg {
                Some(a) => format!("{}({})", func.name(), a.default_name()),
                None => format!("{}(*)", func.name()),
            },
            Expr::Literal(v) => v.to_string(),
            Expr::Binary { left, op, right } => {
                format!("{} {} {}", left.default_name(), op, right.default_name())
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => format!("-{}", expr.default_name()),
                UnaryOp::Not => format!("NOT {}", expr.default_name()),
            },
            Expr::InList { expr, .. } => format!("{} IN (...)", expr.default_name()),
            Expr::Between { expr, .. } => format!("{} BETWEEN ...", expr.default_name()),
            Expr::IsNull { expr, negated } => format!(
                "{} IS {}NULL",
                expr.default_name(),
                if *negated { "NOT " } else { "" }
            ),
            Expr::Param(i) => format!("?{}", i + 1),
        }
    }

    /// True if the expression contains a positional parameter.
    pub fn has_params(&self) -> bool {
        self.max_param().is_some()
    }

    /// True if the expression is a pure literal computation: no column
    /// references, no positional parameters, no aggregate calls anywhere
    /// in the tree. Constant subtrees are what a planner may fold to a
    /// single literal at plan (or prepare) time without changing
    /// row-level semantics.
    pub fn is_const(&self) -> bool {
        match self {
            Expr::Literal(_) => true,
            Expr::Column(_) | Expr::Param(_) | Expr::Agg { .. } => false,
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.is_const(),
            Expr::Binary { left, right, .. } => left.is_const() && right.is_const(),
            Expr::InList { expr, list, .. } => expr.is_const() && list.iter().all(Expr::is_const),
            Expr::Between {
                expr, low, high, ..
            } => expr.is_const() && low.is_const() && high.is_const(),
        }
    }

    /// Highest parameter index referenced, if any.
    pub fn max_param(&self) -> Option<usize> {
        match self {
            Expr::Param(i) => Some(*i),
            Expr::Literal(_) | Expr::Column(_) => None,
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr.max_param(),
            Expr::Binary { left, right, .. } => left.max_param().max(right.max_param()),
            Expr::InList { expr, list, .. } => list
                .iter()
                .filter_map(Expr::max_param)
                .max()
                .max(expr.max_param()),
            Expr::Between {
                expr, low, high, ..
            } => expr.max_param().max(low.max_param()).max(high.max_param()),
            Expr::Agg { arg, .. } => arg.as_deref().and_then(Expr::max_param),
        }
    }

    /// Replace every [`Expr::Param`] with the corresponding literal from
    /// `params`. Errors with the offending 0-based index when a parameter
    /// is out of range.
    pub fn bind_params(&self, params: &[Value]) -> Result<Expr, usize> {
        let bind_box = |e: &Expr| e.bind_params(params).map(Box::new);
        Ok(match self {
            Expr::Param(i) => match params.get(*i) {
                Some(v) => Expr::Literal(v.clone()),
                None => return Err(*i),
            },
            Expr::Literal(_) | Expr::Column(_) => self.clone(),
            Expr::Unary { op, expr } => Expr::Unary {
                op: *op,
                expr: bind_box(expr)?,
            },
            Expr::Binary { left, op, right } => Expr::Binary {
                left: bind_box(left)?,
                op: *op,
                right: bind_box(right)?,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: bind_box(expr)?,
                list: list
                    .iter()
                    .map(|e| e.bind_params(params))
                    .collect::<Result<_, _>>()?,
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: bind_box(expr)?,
                low: bind_box(low)?,
                high: bind_box(high)?,
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: bind_box(expr)?,
                negated: *negated,
            },
            Expr::Agg { func, arg } => Expr::Agg {
                func: *func,
                arg: arg.as_deref().map(bind_box).transpose()?,
            },
        })
    }
}

/// One projection in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `expr [AS alias]`.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Optional alias.
        alias: Option<String>,
    },
}

/// A relation reference in a FROM clause: the relation name plus an
/// optional alias (`flights f` / `flights AS f`). Column references may
/// qualify with the binding name (`f.carrier`).
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Relation name as written.
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// A bare reference without an alias.
    pub fn named(name: impl Into<String>) -> TableRef {
        TableRef {
            name: name.into(),
            alias: None,
        }
    }

    /// The name column references qualify with: the alias when present,
    /// the relation name otherwise.
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.alias {
            Some(a) => write!(f, "{} AS {a}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// Join kind: INNER keeps only matching row pairs; LEFT OUTER
/// additionally keeps every unmatched left row once, NULL-extended on
/// the right side (open-world queries are precisely about the rows an
/// inner join would drop).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum JoinKind {
    /// `[INNER] JOIN`.
    #[default]
    Inner,
    /// `LEFT [OUTER] JOIN`.
    LeftOuter,
}

impl fmt::Display for JoinKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinKind::Inner => "INNER",
            JoinKind::LeftOuter => "LEFT OUTER",
        })
    }
}

/// One `JOIN <table> ON <predicate>` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// The joined relation.
    pub table: TableRef,
    /// INNER or LEFT OUTER.
    pub kind: JoinKind,
    /// The ON predicate. The binder requires a conjunction of equalities
    /// between the two sides (an equi-join).
    pub on: Expr,
}

/// A FROM clause: a base relation plus zero or more joins
/// (left-deep: each JOIN applies to everything to its left).
#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    /// The leftmost relation.
    pub base: TableRef,
    /// `JOIN … ON …` clauses, in source order.
    pub joins: Vec<JoinClause>,
}

impl FromClause {
    /// A single-relation clause without alias or joins.
    pub fn table(name: impl Into<String>) -> FromClause {
        FromClause {
            base: TableRef::named(name),
            joins: Vec::new(),
        }
    }

    /// The bare relation name when this is a plain single-relation FROM
    /// (no joins, no alias) — the shape every pre-join code path handles.
    pub fn single(&self) -> Option<&str> {
        if self.joins.is_empty() && self.base.alias.is_none() {
            Some(&self.base.name)
        } else {
            None
        }
    }

    /// True when the clause contains at least one JOIN.
    pub fn has_joins(&self) -> bool {
        !self.joins.is_empty()
    }

    /// Every referenced relation, base first, in source order.
    pub fn relations(&self) -> impl Iterator<Item = &TableRef> {
        std::iter::once(&self.base).chain(self.joins.iter().map(|j| &j.table))
    }
}

/// A SELECT statement. A single-relation FROM covers the paper's §4
/// population queries; multi-relation FROMs (INNER equi-joins) let a
/// debiased sample join against ordinary dimension tables.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Optional visibility level (populations only; defaults applied by the
    /// engine).
    pub visibility: Option<Visibility>,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// Source relations (population, sample, or auxiliary tables).
    pub from: Option<FromClause>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// ORDER BY `(expr, descending)` pairs.
    pub order_by: Vec<(Expr, bool)>,
    /// LIMIT row count.
    pub limit: Option<usize>,
}

impl SelectStmt {
    /// Every expression in the statement, in clause order (JOIN … ON
    /// predicates come between the SELECT list and WHERE, matching their
    /// lexical position).
    fn exprs(&self) -> impl Iterator<Item = &Expr> {
        self.items
            .iter()
            .filter_map(|i| match i {
                SelectItem::Expr { expr, .. } => Some(expr),
                SelectItem::Wildcard => None,
            })
            .chain(self.from.iter().flat_map(|f| f.joins.iter().map(|j| &j.on)))
            .chain(self.where_clause.iter())
            .chain(self.group_by.iter())
            .chain(self.order_by.iter().map(|(e, _)| e))
    }

    /// Number of positional parameters the statement expects
    /// (`1 + max index`; parameters are numbered in lexical order).
    pub fn param_count(&self) -> usize {
        self.exprs()
            .filter_map(Expr::max_param)
            .max()
            .map_or(0, |i| i + 1)
    }

    /// Column names referenced anywhere in the statement (deduplicated,
    /// in first appearance order) — the prepare-time binding set.
    pub fn referenced_columns(&self) -> Vec<String> {
        let mut out = Vec::new();
        for e in self.exprs() {
            for c in e.referenced_columns() {
                if !out.iter().any(|n: &String| n.eq_ignore_ascii_case(&c)) {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Replace every positional parameter with the corresponding literal.
    /// Errors with the offending 0-based index on out-of-range access.
    pub fn bind_params(&self, params: &[Value]) -> Result<SelectStmt, usize> {
        Ok(SelectStmt {
            visibility: self.visibility,
            items: self
                .items
                .iter()
                .map(|i| match i {
                    SelectItem::Wildcard => Ok(SelectItem::Wildcard),
                    SelectItem::Expr { expr, alias } => Ok(SelectItem::Expr {
                        expr: expr.bind_params(params)?,
                        alias: alias.clone(),
                    }),
                })
                .collect::<Result<_, usize>>()?,
            from: self
                .from
                .as_ref()
                .map(|f| -> Result<FromClause, usize> {
                    Ok(FromClause {
                        base: f.base.clone(),
                        joins: f
                            .joins
                            .iter()
                            .map(|j| -> Result<JoinClause, usize> {
                                Ok(JoinClause {
                                    table: j.table.clone(),
                                    kind: j.kind,
                                    on: j.on.bind_params(params)?,
                                })
                            })
                            .collect::<Result<_, usize>>()?,
                    })
                })
                .transpose()?,
            where_clause: self
                .where_clause
                .as_ref()
                .map(|e| e.bind_params(params))
                .transpose()?,
            group_by: self
                .group_by
                .iter()
                .map(|e| e.bind_params(params))
                .collect::<Result<_, usize>>()?,
            order_by: self
                .order_by
                .iter()
                .map(|(e, d)| e.bind_params(params).map(|e| (e, *d)))
                .collect::<Result<_, usize>>()?,
            limit: self.limit,
        })
    }
}

/// A sampling mechanism declaration (paper §3.1: `USING MECHANISM
/// <mechanism> PERCENT <perc>`).
#[derive(Debug, Clone, PartialEq)]
pub enum MechanismSpec {
    /// `UNIFORM PERCENT p`: every GP tuple included independently so the
    /// sample is `p` percent of the GP.
    Uniform {
        /// Sample percentage of the GP.
        percent: f64,
    },
    /// `STRATIFIED ON attr PERCENT p`: equal-size strata samples totalling
    /// `p` percent of the GP.
    Stratified {
        /// Stratification attribute.
        attr: String,
        /// Sample percentage of the GP.
        percent: f64,
    },
}

/// Row source for INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `VALUES (…), (…)` — each row is a list of literal expressions.
    Values(Vec<Vec<Expr>>),
    /// `INSERT INTO t SELECT …`.
    Select(Box<SelectStmt>),
}

/// A parsed SQL statement in the Mosaic dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE [TEMPORARY] TABLE name (fields…)` — an auxiliary relation.
    CreateTable {
        /// Relation name.
        name: String,
        /// Declared fields (may be empty for late-bound ingestion).
        fields: Vec<Field>,
        /// TEMPORARY flag (auxiliary tables are transient in the paper's
        /// example; retained as a marker).
        temporary: bool,
    },
    /// `CREATE [GLOBAL] POPULATION name (fields…) [AS (SELECT … FROM gp
    /// WHERE pred)]`.
    CreatePopulation {
        /// Population name.
        name: String,
        /// True for the global population.
        global: bool,
        /// Declared attributes (may be empty when derived via AS SELECT).
        fields: Vec<Field>,
        /// Defining view over the global population: `(gp_name, predicate,
        /// projected columns)`.
        source: Option<(String, Option<Expr>, Vec<String>)>,
    },
    /// `CREATE SAMPLE name (fields…) AS (SELECT … FROM gp [WHERE pred]
    /// [USING MECHANISM …])`.
    CreateSample {
        /// Sample name.
        name: String,
        /// Declared attributes (may be empty).
        fields: Vec<Field>,
        /// Reference population.
        population: String,
        /// Projected columns (empty = `*`).
        columns: Vec<String>,
        /// Defining predicate over the population.
        predicate: Option<Expr>,
        /// Optional known sampling mechanism.
        mechanism: Option<MechanismSpec>,
    },
    /// `CREATE METADATA name [FOR population] AS (SELECT …)`.
    CreateMetadata {
        /// Metadata name (paper convention: `<pop>_M1`).
        name: String,
        /// Explicit population binding (extension; otherwise inferred from
        /// the name).
        population: Option<String>,
        /// The aggregate query producing the marginal.
        query: SelectStmt,
    },
    /// `INSERT INTO name [(cols…)] VALUES … | SELECT …`.
    Insert {
        /// Target relation.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Row source.
        source: InsertSource,
    },
    /// A SELECT query.
    Select(SelectStmt),
    /// `EXPLAIN <select>` — render the bound physical plan (operators,
    /// morsel count, thread budget, visibility pipeline) as a result
    /// table instead of executing the query.
    Explain(SelectStmt),
    /// `DROP TABLE|POPULATION|SAMPLE|METADATA name`.
    Drop {
        /// Relation name.
        name: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_helpers() {
        let e = Expr::col("a").and(Expr::lit(1));
        assert!(matches!(e, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn aggregate_detection() {
        let e = Expr::Binary {
            left: Box::new(Expr::Agg {
                func: AggFunc::Count,
                arg: None,
            }),
            op: BinOp::Add,
            right: Box::new(Expr::lit(1)),
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn referenced_columns_dedup() {
        let e = Expr::col("a").and(Expr::Binary {
            left: Box::new(Expr::col("A")),
            op: BinOp::Lt,
            right: Box::new(Expr::col("b")),
        });
        assert_eq!(e.referenced_columns(), vec!["a".to_string(), "b".into()]);
    }

    #[test]
    fn default_names() {
        let e = Expr::Agg {
            func: AggFunc::Avg,
            arg: Some(Box::new(Expr::col("x"))),
        };
        assert_eq!(e.default_name(), "AVG(x)");
        assert_eq!(
            Expr::Agg {
                func: AggFunc::Count,
                arg: None
            }
            .default_name(),
            "COUNT(*)"
        );
    }

    #[test]
    fn agg_from_name_case_insensitive() {
        assert_eq!(AggFunc::from_name("avg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
