//! # mosaic-sql
//!
//! Lexer, AST, and recursive-descent parser for the Mosaic SQL dialect
//! (Orr et al., CIDR 2020, §2–3).
//!
//! On top of a standard SQL subset (CREATE TABLE / INSERT / SELECT with
//! WHERE, GROUP BY, ORDER BY, LIMIT and the usual scalar and aggregate
//! expressions), the dialect adds the paper's open-world constructs:
//!
//! * `CREATE [GLOBAL] POPULATION <pop> (attrs…) [AS (SELECT … FROM <gp>
//!   WHERE <pred>)]` — declare a population relation (§3.1).
//! * `CREATE SAMPLE <s> (attrs…) AS (SELECT … FROM <gp> [WHERE <pred>]
//!   [USING MECHANISM UNIFORM|STRATIFIED ON <attr> PERCENT <p>])` —
//!   declare a sample with an optional known sampling mechanism (§3.1).
//! * `CREATE METADATA <name> [FOR <pop>] AS (SELECT Ai[, Aj], COUNT(*)
//!   FROM <aux> GROUP BY Ai[, Aj])` — attach marginals to a population
//!   (§3.2). Without `FOR`, the target population is inferred from the
//!   `<pop>_<suffix>` naming convention used in the paper's example.
//! * `SELECT CLOSED|SEMI-OPEN|OPEN …` — per-query visibility level (§3.3).
//! * `?` — positional statement parameters ([`Expr::Param`]), numbered in
//!   lexical order per statement and bound to values at execution time by
//!   the engine's prepared statements.
//! * `EXPLAIN <select>` — render the bound physical plan as a result
//!   table instead of executing the query.
//! * `FROM a [AS x] [INNER] JOIN b [AS y] ON x.k = y.k` — INNER
//!   equi-joins with table aliases and qualified column references
//!   ([`TableRef`], [`JoinClause`], [`FromClause`]).
//!
//! ```
//! use mosaic_sql::{parse, Statement, Visibility};
//!
//! let stmts = parse(
//!     "SELECT SEMI-OPEN country, email, COUNT(*) \
//!      FROM EuropeMigrants GROUP BY country, email;",
//! )
//! .unwrap();
//! match &stmts[0] {
//!     Statement::Select(s) => assert_eq!(s.visibility, Some(Visibility::SemiOpen)),
//!     _ => unreachable!(),
//! }
//! ```

mod ast;
mod lexer;
mod parser;

pub use ast::{
    AggFunc, BinOp, Expr, FromClause, InsertSource, JoinClause, JoinKind, MechanismSpec,
    SelectItem, SelectStmt, Statement, TableRef, UnaryOp, Visibility,
};
pub use lexer::{tokenize, Token, TokenKind};
pub use parser::{parse, parse_expr, parse_spanned, ParseError};
