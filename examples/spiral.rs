//! Direct use of the M-SWG library (no SQL): train a generator on the
//! biased spiral sample of Fig. 5 and verify it debiases the sample while
//! staying on the manifold.
//!
//! Run with: `cargo run --release -p mosaic-examples --bin spiral`

use mosaic_bench::spiral::{self, SpiralConfig};
use mosaic_stats::{wasserstein_1d, WassersteinOrder, WeightedEmpirical};
use mosaic_storage::Table;
use mosaic_swg::{MSwg, SwgConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn empirical(t: &Table, attr: &str) -> WeightedEmpirical {
    let c = t.column_by_name(attr).expect("attr");
    WeightedEmpirical::from_values((0..t.num_rows()).filter_map(|r| c.f64_at(r)))
}

fn main() {
    let data = spiral::generate(&SpiralConfig {
        population: 20_000,
        sample: 2_000,
        ..SpiralConfig::default()
    });

    println!("Training the M-SWG on the biased spiral sample (paper Fig. 5)...");
    let model = MSwg::fit_with_progress(
        &data.sample,
        &data.marginals,
        SwgConfig::paper_spiral()
            .with_epochs(30)
            .with_batch_size(256),
        |epoch, loss| {
            if epoch % 10 == 0 {
                println!("  epoch {epoch:>3}: loss {loss:.5}");
            }
        },
    )
    .expect("fit");
    println!(
        "marginal constraints used: {:?}",
        model.report().marginal_labels
    );

    let mut rng = StdRng::seed_from_u64(7);
    let generated = model.generate(data.sample.num_rows(), &mut rng);

    println!("\nWasserstein distance to the *population* per attribute:");
    println!("{:<16} {:>12} {:>12}", "", "x", "y");
    for (name, t) in [
        ("biased sample", &data.sample),
        ("M-SWG sample", &generated),
    ] {
        let wx = wasserstein_1d(
            &empirical(t, "x"),
            &empirical(&data.population, "x"),
            WassersteinOrder::W1,
        );
        let wy = wasserstein_1d(
            &empirical(t, "y"),
            &empirical(&data.population, "y"),
            WassersteinOrder::W1,
        );
        println!("{name:<16} {wx:>12.5} {wy:>12.5}");
    }

    // A range-count check like Fig. 6.
    let truth = spiral::count_in_box(&data.population, 0.1, 0.5, 0.0, 0.4);
    let scale = data.population.num_rows() as f64 / data.sample.num_rows() as f64;
    let unif = scale * spiral::count_in_box(&data.sample, 0.1, 0.5, 0.0, 0.4);
    let mswg = scale * spiral::count_in_box(&generated, 0.1, 0.5, 0.0, 0.4);
    println!("\nrange COUNT over the box [0.1,0.5]x[0.0,0.4]:");
    println!("  truth {truth:.0} | uniform sample estimate {unif:.0} | M-SWG estimate {mswg:.0}");
}
