//! Quickstart: declare a population, attach metadata, ingest a biased
//! sample, and compare CLOSED vs SEMI-OPEN answers — then re-ask the
//! same question through the concurrent session API: prepared
//! statements with `?` parameters, EXPLAIN, and four threads sharing
//! one engine.
//!
//! Run with: `cargo run --release -p mosaic-examples --bin quickstart`

use mosaic_core::{MosaicDb, Value, Visibility};

fn main() {
    let mut db = MosaicDb::new();

    // 1. An auxiliary table holding a published aggregate report
    //    (auxiliary relations behave like ordinary SQL tables).
    db.execute(
        "CREATE TABLE CityReport (city TEXT, reported_count INT);
         INSERT INTO CityReport VALUES
           ('Seattle', 700000), ('Portland', 600000), ('Boise', 200000);",
    )
    .expect("aux table");

    // 2. The population we actually care about — it does not (and cannot)
    //    hold tuples; it's an open-world relation.
    db.execute("CREATE GLOBAL POPULATION People (city TEXT, age INT);")
        .expect("population");

    // 3. Bind the report to the population as metadata (a 1-D marginal
    //    over city).
    db.execute(
        "CREATE METADATA People_M1 AS
           (SELECT city, reported_count FROM CityReport);",
    )
    .expect("metadata");

    // 4. A sample of people, heavily skewed toward Seattle.
    db.execute("CREATE SAMPLE SurveySample AS (SELECT * FROM People);")
        .expect("sample");
    let mut rows = String::from("INSERT INTO SurveySample VALUES ");
    let mut parts = Vec::new();
    for i in 0..80 {
        parts.push(format!("('Seattle', {})", 20 + i % 50));
    }
    for i in 0..15 {
        parts.push(format!("('Portland', {})", 25 + i % 40));
    }
    for i in 0..5 {
        parts.push(format!("('Boise', {})", 30 + i % 30));
    }
    rows.push_str(&parts.join(", "));
    db.execute(&rows).expect("ingest");

    // 5. CLOSED: the raw sample — Seattle looks like 80% of the world.
    let closed = db
        .execute("SELECT CLOSED city, COUNT(*) FROM People GROUP BY city ORDER BY city")
        .expect("closed query");
    println!("CLOSED (raw biased sample):\n{}", closed.table);

    // 6. SEMI-OPEN: Mosaic reweights the sample with IPF so the city
    //    marginal is satisfied — population-scale counts come out.
    let semi = db
        .execute("SELECT SEMI-OPEN city, COUNT(*) FROM People GROUP BY city ORDER BY city")
        .expect("semi-open query");
    println!("SEMI-OPEN (IPF-debiased):\n{}", semi.table);
    for note in &semi.notes {
        println!("note: {note}");
    }

    // The weighted AVG works the same way.
    let avg = db
        .execute("SELECT SEMI-OPEN AVG(age) FROM People")
        .expect("avg");
    println!("\nSEMI-OPEN AVG(age):\n{}", avg.table);

    // 7. The same question, production-style: prepare once (parse +
    //    bind + plan), then execute many times binding only the `?`
    //    parameter values.
    let session = db.session();
    let prepared = session
        .prepare("SELECT SEMI-OPEN city, COUNT(*) FROM People WHERE age >= ? GROUP BY city ORDER BY city")
        .expect("prepare");
    for min_age in [30i64, 50] {
        let out = session
            .query_prepared(&prepared, &[Value::Int(min_age)])
            .expect("execute_prepared");
        println!("\nSEMI-OPEN counts with age >= {min_age} (prepared):\n{out}");
    }

    // 8. EXPLAIN renders the bound plan — operators, morsel split,
    //    thread budget, and the visibility pipeline — without running it.
    let plan = session
        .query("EXPLAIN SELECT SEMI-OPEN city, COUNT(*) FROM People WHERE age >= 30 GROUP BY city")
        .expect("explain");
    println!("EXPLAIN:\n{plan}");

    // 9. The engine is Arc-shared: sessions on other threads execute
    //    concurrently under catalog read locks. One session per
    //    visibility level — a per-session default, no engine mutation —
    //    each preparing and running its own parameterized query, while
    //    two more share the SEMI-OPEN prepared statement from step 7.
    let engine = db.engine().clone();
    std::thread::scope(|s| {
        let defaults: Vec<_> = [Visibility::Closed, Visibility::SemiOpen]
            .into_iter()
            .map(|vis| {
                let engine = &engine;
                s.spawn(move || {
                    let session = engine.session().with_default_visibility(vis);
                    let prepared = session
                        .prepare("SELECT city, COUNT(*) FROM People WHERE age >= ? GROUP BY city")
                        .expect("prepare");
                    let out = session
                        .query_prepared(&prepared, &[Value::Int(30)])
                        .expect("concurrent execute");
                    (vis, out.num_rows())
                })
            })
            .collect();
        let shared: Vec<_> = (0..2)
            .map(|_| {
                let engine = &engine;
                let prepared = &prepared;
                s.spawn(move || {
                    engine
                        .session()
                        .query_prepared(prepared, &[Value::Int(50)])
                        .expect("shared prepared execute")
                        .num_rows()
                })
            })
            .collect();
        for h in defaults {
            let (vis, groups) = h.join().expect("join");
            println!("concurrent session at {vis}: {groups} group(s)");
        }
        for h in shared {
            println!(
                "shared prepared statement: {} group(s)",
                h.join().expect("join")
            );
        }
    });
}
