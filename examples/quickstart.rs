//! Quickstart: declare a population, attach metadata, ingest a biased
//! sample, and compare CLOSED vs SEMI-OPEN answers.
//!
//! Run with: `cargo run --release -p mosaic-examples --bin quickstart`

use mosaic_core::MosaicDb;

fn main() {
    let mut db = MosaicDb::new();

    // 1. An auxiliary table holding a published aggregate report
    //    (auxiliary relations behave like ordinary SQL tables).
    db.execute(
        "CREATE TABLE CityReport (city TEXT, reported_count INT);
         INSERT INTO CityReport VALUES
           ('Seattle', 700000), ('Portland', 600000), ('Boise', 200000);",
    )
    .expect("aux table");

    // 2. The population we actually care about — it does not (and cannot)
    //    hold tuples; it's an open-world relation.
    db.execute("CREATE GLOBAL POPULATION People (city TEXT, age INT);")
        .expect("population");

    // 3. Bind the report to the population as metadata (a 1-D marginal
    //    over city).
    db.execute(
        "CREATE METADATA People_M1 AS
           (SELECT city, reported_count FROM CityReport);",
    )
    .expect("metadata");

    // 4. A sample of people, heavily skewed toward Seattle.
    db.execute("CREATE SAMPLE SurveySample AS (SELECT * FROM People);")
        .expect("sample");
    let mut rows = String::from("INSERT INTO SurveySample VALUES ");
    let mut parts = Vec::new();
    for i in 0..80 {
        parts.push(format!("('Seattle', {})", 20 + i % 50));
    }
    for i in 0..15 {
        parts.push(format!("('Portland', {})", 25 + i % 40));
    }
    for i in 0..5 {
        parts.push(format!("('Boise', {})", 30 + i % 30));
    }
    rows.push_str(&parts.join(", "));
    db.execute(&rows).expect("ingest");

    // 5. CLOSED: the raw sample — Seattle looks like 80% of the world.
    let closed = db
        .execute("SELECT CLOSED city, COUNT(*) FROM People GROUP BY city ORDER BY city")
        .expect("closed query");
    println!("CLOSED (raw biased sample):\n{}", closed.table);

    // 6. SEMI-OPEN: Mosaic reweights the sample with IPF so the city
    //    marginal is satisfied — population-scale counts come out.
    let semi = db
        .execute("SELECT SEMI-OPEN city, COUNT(*) FROM People GROUP BY city ORDER BY city")
        .expect("semi-open query");
    println!("SEMI-OPEN (IPF-debiased):\n{}", semi.table);
    for note in &semi.notes {
        println!("note: {note}");
    }

    // The weighted AVG works the same way.
    let avg = db
        .execute("SELECT SEMI-OPEN AVG(age) FROM People")
        .expect("avg");
    println!("\nSEMI-OPEN AVG(age):\n{}", avg.table);
}
