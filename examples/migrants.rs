//! The paper's §2 motivating example, end to end: estimating European
//! migrant counts from a Yahoo!-email sample, debiased against Eurostat
//! reports — including the OPEN query that *generates* the AOL tuples
//! missing from the sample.
//!
//! Run with: `cargo run --release -p mosaic-examples --bin migrants`

use mosaic_core::{MosaicDb, OpenBackend, SwgConfig};
use mosaic_storage::TableBuilder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ground-truth world we pretend not to know: migrants per (country,
/// email provider).
const WORLD: &[(&str, &str, i64)] = &[
    ("UK", "Yahoo", 20_000),
    ("UK", "AOL", 5_000),
    ("UK", "Gmail", 35_000),
    ("FR", "Yahoo", 9_000),
    ("FR", "AOL", 3_000),
    ("FR", "Gmail", 28_000),
    ("DE", "Yahoo", 12_000),
    ("DE", "AOL", 2_000),
    ("DE", "Gmail", 41_000),
];

fn main() {
    let mut db = MosaicDb::new();
    // A lighter generator than the engine default keeps the example
    // snappy; the marginals here are tiny.
    db.options_mut().open.backend = OpenBackend::Swg(
        SwgConfig::default()
            .with_hidden_dim(32)
            .with_hidden_layers(2)
            .with_latent_dim(Some(4))
            .with_lambda(0.0)
            .with_epochs(120)
            .with_batch_size(256)
            .with_steps_per_epoch(Some(2))
            .with_learning_rate(5e-3),
    );
    db.options_mut().open.num_generated = 5;
    db.options_mut().open.rows_per_sample = Some(4000);

    // ---- The exact DDL of the paper's §2 listing ----
    db.execute("CREATE TEMPORARY TABLE Eurostat (country TEXT, email TEXT, reported_count INT);")
        .expect("eurostat table");
    // "...Ingest Eurostat reports to Eurostat table" — per-country totals
    // (email NULL) and per-provider totals (country NULL).
    let mut by_country = std::collections::HashMap::new();
    let mut by_email = std::collections::HashMap::new();
    for (c, e, n) in WORLD {
        *by_country.entry(*c).or_insert(0) += n;
        *by_email.entry(*e).or_insert(0) += n;
    }
    for (c, n) in &by_country {
        db.execute(&format!(
            "INSERT INTO Eurostat (country, reported_count) VALUES ('{c}', {n})"
        ))
        .expect("insert");
    }
    for (e, n) in &by_email {
        db.execute(&format!(
            "INSERT INTO Eurostat (email, reported_count) VALUES ('{e}', {n})"
        ))
        .expect("insert");
    }

    db.execute(
        "CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT);
         CREATE METADATA EuropeMigrants_M1 AS
           (SELECT country, reported_count FROM Eurostat WHERE country IS NOT NULL);
         CREATE METADATA EuropeMigrants_M2 AS
           (SELECT email, reported_count FROM Eurostat WHERE email IS NOT NULL);
         CREATE SAMPLE YahooMigrants AS
           (SELECT * FROM EuropeMigrants WHERE email = 'Yahoo');",
    )
    .expect("paper ddl");

    // "...Ingest Yahoo sample to YahooMigrants": a 10% sample of the
    // Yahoo migrants only — the selection bias of the motivating example.
    let mut rng = StdRng::seed_from_u64(1);
    let schema = db
        .catalog()
        .sample("YahooMigrants")
        .unwrap()
        .data
        .schema()
        .clone();
    let mut b = TableBuilder::new(schema);
    for (c, e, n) in WORLD {
        if *e != "Yahoo" {
            continue;
        }
        for _ in 0..(*n / 10) {
            if rng.random::<f64>() < 0.95 {
                b.push_row(vec![(*c).into(), (*e).into()]).unwrap();
            }
        }
    }
    db.ingest_sample("YahooMigrants", b.finish())
        .expect("ingest");

    // ---- The two queries of the paper ----
    println!(
        "SELECT SEMI-OPEN country, email, COUNT(*) FROM EuropeMigrants GROUP BY country, email;"
    );
    let semi = db
        .execute(
            "SELECT SEMI-OPEN country, email, COUNT(*) FROM EuropeMigrants \
             GROUP BY country, email ORDER BY country, email",
        )
        .expect("semi-open");
    println!("{}", semi.table);
    println!("(Only Yahoo rows — reweighting cannot invent the AOL/Gmail tuples.)\n");

    println!("SELECT OPEN country, email, COUNT(*) FROM EuropeMigrants GROUP BY country, email;");
    let open = db
        .execute(
            "SELECT OPEN country, email, COUNT(*) FROM EuropeMigrants \
             GROUP BY country, email ORDER BY country, email",
        )
        .expect("open");
    println!("{}", open.table);
    for note in &open.notes {
        println!("note: {note}");
    }
    println!(
        "\nGround truth for comparison: UK/Yahoo 20000, UK/AOL 5000, FR/Yahoo 9000, …\n\
         The OPEN answer contains email providers that never appear in the sample:\n\
         Mosaic generated them from the Eurostat marginals (paper §2's 'UK, AOL, 20' row).\n\
         Note the per-cell counts are approximate — with only 1-D marginals the\n\
         (country × email) joint is underdetermined, which is exactly the OPEN\n\
         visibility trade-off of §3.3: fewer false negatives, possible false\n\
         positives. Publishing a 2-D marginal pins the joint down."
    );
}
