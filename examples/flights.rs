//! The paper's flights scenario (§5.3) through the engine API: build the
//! synthetic IDEBench-style workload, register its marginals and binners,
//! and compare the three visibility levels on a Table 2 query.
//!
//! Run with: `cargo run --release -p mosaic-examples --bin flights`

use mosaic_bench::flights::{self, FlightsConfig};
use mosaic_core::{MosaicDb, OpenBackend};
use mosaic_swg::SwgConfig;

fn main() {
    let data = flights::generate(&FlightsConfig {
        population: 50_000,
        marginal_bins: 16,
        ..FlightsConfig::default()
    });
    println!(
        "population: {} rows | biased sample: {} rows (95% long flights)",
        data.population.num_rows(),
        data.sample.num_rows()
    );

    let mut db = MosaicDb::new();
    db.options_mut().open.backend = OpenBackend::Swg(
        SwgConfig::paper_flights()
            .with_projections(64)
            .with_epochs(60),
    );
    db.options_mut().open.num_generated = 5;
    db.execute(
        "CREATE GLOBAL POPULATION Flights (carrier TEXT, taxi_out INT, taxi_in INT, elapsed_time INT, distance INT);
         CREATE SAMPLE FlightSample AS (SELECT * FROM Flights);",
    )
    .expect("ddl");
    for (i, m) in data.marginals.iter().enumerate() {
        db.add_metadata(&format!("Flights_M{i}"), "Flights", m.clone())
            .expect("metadata");
    }
    for (attr, binner) in &data.binners {
        db.register_binner(attr, binner.clone());
    }
    db.ingest_sample("FlightSample", data.sample.clone())
        .expect("ingest");

    // Ground truth from the generator's population (normally unknowable).
    let truth = mosaic_core::run_select(
        &match mosaic_core::parse("SELECT AVG(elapsed_time) FROM F WHERE distance > 1000")
            .unwrap()
            .pop()
            .unwrap()
        {
            mosaic_core::Statement::Select(s) => s,
            _ => unreachable!(),
        },
        &data.population,
        None,
    )
    .unwrap();
    println!("\nQuery 3 of Table 2: SELECT AVG(elapsed_time) FROM Flights WHERE distance > 1000");
    println!("ground truth: {}", truth.value(0, 0));

    for vis in ["CLOSED", "SEMI-OPEN", "OPEN"] {
        let result = db
            .execute(&format!(
                "SELECT {vis} AVG(elapsed_time) FROM Flights WHERE distance > 1000"
            ))
            .expect("query");
        println!("\n{vis}:\n{}", result.table);
        for note in &result.notes {
            println!("  note: {note}");
        }
    }
    println!(
        "\nExpected shape (paper Fig. 7, Q3): CLOSED overestimates (the sample \
         over-represents long flights); SEMI-OPEN's IPF reweighting lands within \
         a percent of the truth using the (distance, elapsed_time) marginal. \
         OPEN answers from *generated* tuples whose joint is only as fine as the \
         binned marginals, so it corrects the bias direction but with more \
         variance — the paper's same observation for M-SWG on Q1/Q3 \
         (run `cargo run -p mosaic-bench --bin fig7` for the full comparison)."
    );
}
