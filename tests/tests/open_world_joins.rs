//! Statistical acceptance of open-world joins: SEMI-OPEN weighted
//! aggregates through population⋈aux and population⋈sample joins must
//! land on the declared-marginal ground truth, combined weights must be
//! IPF re-calibrated when both sides carry correction weights, and LEFT
//! OUTER must keep the unmatched population mass (the §3.3 false
//! negatives stay visible instead of silently dropping).

use std::collections::HashMap;

use mosaic_core::{MosaicDb, Value};

/// The §2 world, shrunk: a population of 1000 migrants (declared country
/// marginal UK 600 / FR 400), observed only through a biased sample of
/// 50 rows (40 UK, 10 FR), joined against auxiliary country attributes.
fn setup() -> MosaicDb {
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE TABLE Report (country TEXT, reported_count INT);
         INSERT INTO Report VALUES ('UK', 600), ('FR', 400);
         CREATE GLOBAL POPULATION Migrants (country TEXT);
         CREATE METADATA Migrants_M AS (SELECT country, reported_count FROM Report);
         CREATE SAMPLE MSample AS (SELECT * FROM Migrants);
         CREATE TABLE Regions (country TEXT, region TEXT, score INT);
         INSERT INTO Regions VALUES ('UK', 'north', 10), ('FR', 'south', 50);",
    )
    .unwrap();
    let mut rows = vec!["('UK')"; 40];
    rows.extend(vec!["('FR')"; 10]);
    db.execute(&format!("INSERT INTO MSample VALUES {}", rows.join(",")))
        .unwrap();
    db
}

fn group_counts(t: &mosaic_core::Table) -> HashMap<String, f64> {
    (0..t.num_rows())
        .map(|r| {
            let key = match t.value(r, 0) {
                Value::Null => "<null>".to_string(),
                v => v.to_string(),
            };
            (key, t.value(r, 1).as_f64().unwrap())
        })
        .collect()
}

/// SEMI-OPEN COUNT(*) through a population⋈aux join lands exactly on
/// the declared marginal totals (single-marginal raking is exact), while
/// CLOSED reports the raw biased sample counts.
#[test]
fn semi_open_join_counts_match_declared_marginal() {
    let mut db = setup();
    let semi = db
        .execute(
            "SELECT SEMI-OPEN c.region AS region, COUNT(*) AS n \
             FROM Migrants m JOIN Regions c ON m.country = c.country \
             GROUP BY c.region ORDER BY region",
        )
        .unwrap();
    let semi = group_counts(&semi.table);
    assert!(
        (semi["north"] - 600.0).abs() < 1e-6 && (semi["south"] - 400.0).abs() < 1e-6,
        "SEMI-OPEN joined counts should hit the declared marginal: {semi:?}"
    );
    let closed = db
        .execute(
            "SELECT CLOSED c.region AS region, COUNT(*) AS n \
             FROM Migrants m JOIN Regions c ON m.country = c.country \
             GROUP BY c.region ORDER BY region",
        )
        .unwrap();
    let closed = group_counts(&closed.table);
    assert_eq!(closed["north"], 40.0, "CLOSED keeps the raw sample counts");
    assert_eq!(closed["south"], 10.0, "CLOSED keeps the raw sample counts");
}

/// A weighted AVG over an attribute fetched *through* the join: the
/// SEMI-OPEN estimate must essentially recover the population truth,
/// closing almost all of the biased (CLOSED) gap — the debiasing.rs
/// acceptance shape, through a join tree.
#[test]
fn semi_open_join_average_debiases_toward_truth() {
    let mut db = setup();
    // Truth over the declared population: (600·10 + 400·50) / 1000.
    let truth = 26.0;
    let avg_of = |db: &mut MosaicDb, vis: &str| -> f64 {
        db.execute(&format!(
            "SELECT {vis} AVG(c.score) AS a \
             FROM Migrants m JOIN Regions c ON m.country = c.country"
        ))
        .unwrap()
        .table
        .value(0, 0)
        .as_f64()
        .unwrap()
    };
    let semi = avg_of(&mut db, "SEMI-OPEN");
    let closed = avg_of(&mut db, "CLOSED");
    let semi_err = (semi - truth).abs();
    let closed_err = (closed - truth).abs();
    assert!(
        closed_err > 5.0,
        "the sample must actually be biased for this test to mean anything \
         (closed {closed:.2} vs truth {truth:.2})"
    );
    assert!(
        semi_err < closed_err * 0.05 && semi_err < 1e-3,
        "SEMI-OPEN join AVG {semi:.4} should recover truth {truth} \
         (closed {closed:.4}, err {closed_err:.4})"
    );
}

/// Weighted×weighted: joining the population with a declared sample puts
/// correction weights on BOTH sides; the combined product weight must be
/// IPF re-calibrated so group totals reproduce the declared marginal —
/// the raw product (40·40 UK pairs at weight 15) would be off by ~40×.
#[test]
fn combined_weights_recalibrated_to_declared_marginals() {
    let mut db = setup();
    let result = db
        .execute(
            "SELECT SEMI-OPEN m.country AS country, COUNT(*) AS n \
             FROM Migrants m JOIN MSample s ON m.country = s.country \
             GROUP BY m.country ORDER BY country",
        )
        .unwrap();
    assert!(
        result.notes.iter().any(|n| n.contains("re-calibrated")),
        "expected the combined-weight re-calibration note, got {:?}",
        result.notes
    );
    let counts = group_counts(&result.table);
    assert!(
        (counts["UK"] - 600.0).abs() < 1e-6,
        "re-calibrated UK mass should be 600, got {counts:?}"
    );
    assert!(
        (counts["FR"] - 400.0).abs() < 1e-6,
        "re-calibrated FR mass should be 400, got {counts:?}"
    );
    // The ungrouped total is the whole declared population.
    let total = db
        .execute(
            "SELECT SEMI-OPEN COUNT(*) AS n \
             FROM Migrants m JOIN MSample s ON m.country = s.country",
        )
        .unwrap()
        .table
        .value(0, 0)
        .as_f64()
        .unwrap();
    assert!(
        (total - 1000.0).abs() < 1e-6,
        "re-calibrated total mass should be the declared 1000, got {total}"
    );
}

/// The re-calibrated combined weight must be bit-identical across
/// thread counts and optimizer settings — in particular, projection
/// pruning must not strip the marginal attributes IPF rakes over.
#[test]
fn recalibrated_join_is_invariant_across_threads_and_optimizer() {
    use std::sync::Arc;
    let engine = Arc::new(mosaic_core::MosaicEngine::new());
    engine
        .session()
        .execute(
            "CREATE TABLE Report (country TEXT, reported_count INT);
             INSERT INTO Report VALUES ('UK', 600), ('FR', 400);
             CREATE GLOBAL POPULATION Migrants (country TEXT);
             CREATE METADATA Migrants_M AS (SELECT country, reported_count FROM Report);
             CREATE SAMPLE MSample AS (SELECT * FROM Migrants);
             INSERT INTO MSample VALUES ('UK'), ('UK'), ('UK'), ('FR');",
        )
        .unwrap();
    for sql in [
        "SELECT SEMI-OPEN COUNT(*) AS n \
         FROM Migrants m JOIN MSample s ON m.country = s.country",
        "SELECT SEMI-OPEN m.country AS country, COUNT(*) AS n \
         FROM Migrants m JOIN MSample s ON m.country = s.country \
         GROUP BY m.country ORDER BY country",
    ] {
        let baseline = engine
            .session()
            .with_parallelism(1)
            .with_optimizer(false)
            .query(sql)
            .unwrap();
        for threads in [1, 2, 8] {
            for optimizer in [false, true] {
                let out = engine
                    .session()
                    .with_parallelism(threads)
                    .with_optimizer(optimizer)
                    .query(sql)
                    .unwrap();
                assert_eq!(out.num_rows(), baseline.num_rows(), "{sql}");
                for r in 0..out.num_rows() {
                    for c in 0..out.num_columns() {
                        assert_eq!(
                            out.value(r, c),
                            baseline.value(r, c),
                            "{sql} diverged at ({r},{c}) with threads={threads}, \
                             optimizer={optimizer}"
                        );
                    }
                }
            }
        }
    }
}

/// Without declared marginals the combined weight is the plain product
/// under independence — and the answer says so in its notes.
#[test]
fn combined_weight_without_marginals_is_plain_product() {
    let mut db = MosaicDb::new();
    // A known uniform mechanism gives SEMI-OPEN weights without any
    // declared metadata — so there is nothing to re-calibrate against.
    db.execute(
        "CREATE GLOBAL POPULATION P (k TEXT);
         CREATE SAMPLE A AS (SELECT * FROM P USING MECHANISM UNIFORM PERCENT 50);
         CREATE SAMPLE B AS (SELECT * FROM P USING MECHANISM UNIFORM PERCENT 50);
         INSERT INTO A VALUES ('x'), ('y');
         INSERT INTO B VALUES ('x'), ('x');",
    )
    .unwrap();
    let result = db
        .execute(
            "SELECT SEMI-OPEN COUNT(*) AS n \
             FROM P p JOIN B b ON p.k = b.k",
        )
        .unwrap();
    assert!(
        result
            .notes
            .iter()
            .any(|n| n.contains("independence assumption")),
        "expected the independence-assumption note, got {:?}",
        result.notes
    );
}

/// LEFT OUTER under SEMI-OPEN: population rows with no aux match keep
/// their reweighted mass in the NULL-extended group instead of being
/// dropped — the open-world answer to a closed-world lookup table.
#[test]
fn semi_open_left_join_keeps_unmatched_mass() {
    let mut db = setup();
    // An aux table that only knows about the UK.
    db.execute(
        "CREATE TABLE UkOnly (country TEXT, region TEXT);
         INSERT INTO UkOnly VALUES ('UK', 'north');",
    )
    .unwrap();
    let out = db
        .execute(
            "SELECT SEMI-OPEN c.region AS region, COUNT(*) AS n \
             FROM Migrants m LEFT JOIN UkOnly c ON m.country = c.country \
             GROUP BY c.region ORDER BY region",
        )
        .unwrap();
    let groups = group_counts(&out.table);
    assert!(
        (groups["north"] - 600.0).abs() < 1e-6,
        "matched mass: {groups:?}"
    );
    assert!(
        (groups["<null>"] - 400.0).abs() < 1e-6,
        "the FR mass must survive, NULL-extended: {groups:?}"
    );
    // An INNER join silently drops it — exactly the failure mode LEFT
    // OUTER exists to surface.
    let inner = db
        .execute(
            "SELECT SEMI-OPEN COUNT(*) AS n \
             FROM Migrants m JOIN UkOnly c ON m.country = c.country",
        )
        .unwrap();
    let n = inner.table.value(0, 0).as_f64().unwrap();
    assert!(
        (n - 600.0).abs() < 1e-6,
        "INNER keeps only the UK mass: {n}"
    );
}
