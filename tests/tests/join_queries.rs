//! Engine-level join integration tests: the acceptance query
//! (sample × dimension with carried weights), combined weights for
//! weighted×weighted joins, bind-time diagnostics (ambiguity, unknown
//! relations listing the catalog), prepared join statements with `?`
//! parameters on both sides, and the EXPLAIN rendering of a join plan.

use std::sync::Arc;

use mosaic_core::{reference_join, run_select_rowwise, MosaicEngine, MosaicError, Value};
use mosaic_sql::{parse, parse_expr, SelectStmt, Statement};
use mosaic_storage::{DataType, Field, Schema, Table, TableBuilder, Value as V};

fn select(src: &str) -> SelectStmt {
    match parse(src).unwrap().pop().unwrap() {
        Statement::Select(s) => s,
        other => panic!("not a select: {other:?}"),
    }
}

fn tables_identical(a: &Table, b: &Table) {
    assert_eq!(a.num_rows(), b.num_rows(), "row count");
    assert_eq!(a.num_columns(), b.num_columns(), "column count");
    for r in 0..a.num_rows() {
        for c in 0..a.num_columns() {
            assert_eq!(a.value(r, c), b.value(r, c), "cell ({r},{c})");
        }
    }
}

/// Flights fact rows (carrier, distance) and a carriers dimension
/// (code, name) — the ISSUE's acceptance shape.
fn flights_engine() -> Arc<MosaicEngine> {
    let engine = Arc::new(MosaicEngine::new());
    let session = engine.session();
    session
        .execute(
            "CREATE TABLE flights (carrier TEXT, distance INT, elapsed INT);
             INSERT INTO flights VALUES
               ('AA', 100, 60), ('AA', 500, 120), ('WN', 900, 180),
               ('WN', 1500, 240), ('US', 300, 90), ('ZZ', 50, 10);
             CREATE TABLE carriers (code TEXT, name TEXT);
             INSERT INTO carriers VALUES
               ('AA', 'American'), ('WN', 'Southwest'), ('US', 'USAir'), ('DL', 'Delta');",
        )
        .unwrap();
    engine
}

/// The acceptance-criteria query: parses, binds, optimizes (pushdown +
/// pruning fire and show in EXPLAIN), and returns bit-identical results
/// across row-wise reference × vectorized × threads {1,2,8} × optimizer
/// {off,on}.
#[test]
fn acceptance_query_end_to_end() {
    let engine = flights_engine();
    let sql = "SELECT c.name AS name, SUM(f.distance) AS s FROM flights f \
               JOIN carriers c ON f.carrier = c.code \
               WHERE f.elapsed > 30 AND c.name != 'Delta' \
               GROUP BY c.name ORDER BY name";
    // Row-wise reference: nested-loop join, then the row-at-a-time
    // executor over the joined table.
    let cat = engine.catalog();
    let flights = cat.aux("flights").unwrap().clone();
    let carriers = cat.aux("carriers").unwrap().clone();
    drop(cat);
    let keys = vec![(parse_expr("carrier").unwrap(), parse_expr("code").unwrap())];
    let joined = reference_join(&flights, "f", &carriers, "c", &keys).unwrap();
    let reference = run_select_rowwise(
        &select(
            "SELECT name, SUM(distance) AS s FROM j WHERE elapsed > 30 AND name != 'Delta' \
             GROUP BY name ORDER BY name",
        ),
        &joined,
        None,
    )
    .unwrap();
    assert_eq!(reference.num_rows(), 3);
    for threads in [1usize, 2, 8] {
        for optimizer in [false, true] {
            let out = engine
                .session()
                .with_parallelism(threads)
                .with_optimizer(optimizer)
                .query(sql)
                .unwrap();
            tables_identical(&out, &reference);
        }
    }
    // EXPLAIN shows the join tree and the fired rules.
    let plan = engine
        .session()
        .with_optimizer(true)
        .query(&format!("EXPLAIN {sql}"))
        .unwrap();
    let text: Vec<String> = (0..plan.num_rows())
        .map(|r| plan.value(r, 0).to_string())
        .collect();
    let text = text.join("\n");
    assert!(text.contains("INNER hash equi-join"), "{text}");
    assert!(text.contains("Join[carrier = code]"), "{text}");
    assert!(text.contains("predicate_pushdown"), "{text}");
    assert!(text.contains("projection_pruning"), "{text}");
    assert!(text.contains("HashJoin"), "{text}");
    // The unused flights column `elapsed`… is referenced; but carriers
    // pruning keeps only code + name, and the elapsed filter pushed into
    // the left scan.
    assert!(text.contains("pushed Filter"), "{text}");
}

/// Weighted aggregates over a joined sample use the carried sample
/// weights: the engine-managed `weight` column flows through the join
/// (and pruning must not drop it).
#[test]
fn joined_sample_carries_weights() {
    let engine = Arc::new(MosaicEngine::new());
    let session = engine.session();
    session
        .execute(
            "CREATE GLOBAL POPULATION Pop (carrier TEXT, distance INT);
             CREATE SAMPLE S AS (SELECT * FROM Pop);
             INSERT INTO S VALUES ('AA', 100), ('WN', 900), ('AA', 500), ('US', 300);
             CREATE TABLE carriers (code TEXT, name TEXT);
             INSERT INTO carriers VALUES ('AA', 'American'), ('WN', 'Southwest');",
        )
        .unwrap();
    engine
        .set_sample_weights("S", vec![10.0, 2.0, 10.0, 7.0])
        .unwrap();
    for optimizer in [false, true] {
        let out = engine
            .session()
            .with_optimizer(optimizer)
            .query(
                "SELECT c.name AS name, SUM(s.weight * s.distance) AS wsum, SUM(s.weight) AS w \
                 FROM S s JOIN carriers c ON s.carrier = c.code GROUP BY c.name ORDER BY name",
            )
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        // American: 10*100 + 10*500 = 6000, weight 20; Southwest: 2*900.
        assert_eq!(out.value(0, 0), V::Str("American".into()));
        assert_eq!(out.value(0, 1), V::Float(6000.0));
        assert_eq!(out.value(0, 2), V::Float(20.0));
        assert_eq!(out.value(1, 1), V::Float(1800.0));
    }
}

/// Joining two samples (two weighted inputs) is a clean bind-time error.
#[test]
fn two_weighted_relations_combine_weights() {
    let engine = Arc::new(MosaicEngine::new());
    engine
        .session()
        .execute(
            "CREATE GLOBAL POPULATION Pop (a TEXT);
             CREATE SAMPLE S1 AS (SELECT * FROM Pop);
             CREATE SAMPLE S2 AS (SELECT * FROM Pop);
             INSERT INTO S1 VALUES ('x'), ('y');
             INSERT INTO S2 VALUES ('x'), ('x');",
        )
        .unwrap();
    let s = engine.session();
    // The join emits exactly one `weight` output — the product of the
    // per-side weights (fresh samples carry weight 1.0 per row).
    let out = s
        .query("SELECT a.a, weight FROM S1 a JOIN S2 b ON a.a = b.a")
        .unwrap();
    assert_eq!(out.num_rows(), 2, "'x' matches both S2 rows");
    let names: Vec<&str> = out
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    assert_eq!(names, vec!["a.a", "weight"]);
    for r in 0..out.num_rows() {
        assert_eq!(out.value(r, 1), V::Float(1.0), "product of unit weights");
    }
    // The wildcard exposes one combined weight, not one per side.
    let out = s
        .query("SELECT * FROM S1 a JOIN S2 b ON a.a = b.a")
        .unwrap();
    let weight_cols = out
        .schema()
        .fields()
        .iter()
        .filter(|f| f.name.to_ascii_lowercase().contains("weight"))
        .count();
    assert_eq!(weight_cols, 1, "one combined weight column");
}

/// Ambiguous bare columns, unknown qualifiers, and non-equi ON shapes
/// are rejected with targeted errors.
#[test]
fn join_bind_diagnostics() {
    let engine = Arc::new(MosaicEngine::new());
    engine
        .session()
        .execute(
            "CREATE TABLE a (k INT, v INT);
             CREATE TABLE b (k INT, w INT);
             INSERT INTO a VALUES (1, 10);
             INSERT INTO b VALUES (1, 20);",
        )
        .unwrap();
    let s = engine.session();
    // Bare `k` exists on both sides.
    let err = s.query("SELECT k FROM a JOIN b ON a.k = b.k").unwrap_err();
    assert!(err.to_string().contains("ambiguous column k"), "{err}");
    // Qualified duplicates work.
    let ok = s
        .query("SELECT a.k, b.k, v, w FROM a JOIN b ON a.k = b.k")
        .unwrap();
    assert_eq!(ok.num_rows(), 1);
    assert_eq!(ok.schema().field(0).name, "a.k");
    // Unknown qualifier.
    let err = s
        .query("SELECT x.k FROM a JOIN b ON a.k = b.k")
        .unwrap_err();
    assert!(
        err.to_string().contains("unknown relation qualifier x"),
        "{err}"
    );
    // Non-equi ON.
    let err = s.query("SELECT v FROM a JOIN b ON a.k > b.k").unwrap_err();
    assert!(err.to_string().contains("equi-join"), "{err}");
    // Both sides of one equality from the same relation.
    let err = s.query("SELECT v FROM a JOIN b ON a.k = a.v").unwrap_err();
    assert!(err.to_string().contains("exactly one"), "{err}");
    // A population side without a usable sample errors naming the
    // population (the join itself is legal — resolution isn't).
    engine
        .session()
        .execute("CREATE GLOBAL POPULATION P (k INT)")
        .unwrap();
    let err = s.query("SELECT v FROM a JOIN P ON a.k = P.k").unwrap_err();
    assert!(
        err.to_string()
            .contains("no non-empty sample available for population P"),
        "{err}"
    );
    // A visibility clause over a population-free scope names the
    // relations that made it illegal.
    let err = s
        .query("SELECT SEMI-OPEN v FROM a JOIN b ON a.k = b.k")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("apply to population queries only"), "{msg}");
    assert!(msg.contains("a, b"), "{msg}");
    // OPEN×OPEN two-population joins are rejected with both names and
    // the workaround.
    engine
        .session()
        .execute(
            "CREATE POPULATION Q AS (SELECT * FROM P WHERE k > 0);
             CREATE SAMPLE PS AS (SELECT * FROM P);
             CREATE SAMPLE QS AS (SELECT * FROM Q);
             INSERT INTO PS VALUES (1);
             INSERT INTO QS VALUES (1);",
        )
        .unwrap();
    let err = s
        .query("SELECT OPEN COUNT(*) FROM P JOIN Q ON P.k = Q.k")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("OPEN join of populations P and Q"), "{msg}");
    assert!(msg.contains("one population side"), "{msg}");
    // A population in a multi-relation FROM without a JOIN is rejected
    // with the population's name.
    let err = s.query("SELECT p.k FROM P p").unwrap_err();
    assert!(err.to_string().contains("population P can appear"), "{err}");
}

/// The unknown-relation error lists what the catalog does have.
#[test]
fn unknown_table_error_lists_available_relations() {
    let engine = Arc::new(MosaicEngine::new());
    let s = engine.session();
    let err = s.query("SELECT x FROM missing").unwrap_err();
    assert!(err.to_string().contains("no relations yet"), "{err}");
    s.execute("CREATE TABLE t1 (x INT); CREATE TABLE t2 (y INT);")
        .unwrap();
    let err = s.query("SELECT x FROM missing").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("unknown relation missing"), "{msg}");
    assert!(msg.contains("t1") && msg.contains("t2"), "{msg}");
    // The prepare path gives the same hint as a bind error.
    let err = s.prepare("SELECT x FROM missing").unwrap_err();
    assert!(matches!(err, MosaicError::Bind(_)), "{err}");
    assert!(err.to_string().contains("t1"), "{err}");
    // And so does a join referencing an unknown dimension.
    let err = s
        .query("SELECT t1.x FROM t1 JOIN nope ON t1.x = nope.z")
        .unwrap_err();
    assert!(err.to_string().contains("available relations"), "{err}");
}

/// Prepared join statements cache the optimized plan; `?` parameters
/// bind on both sides at execution time.
#[test]
fn prepared_join_with_params_on_both_sides() {
    let engine = flights_engine();
    let s = engine.session().with_optimizer(true);
    let p = s
        .prepare(
            "SELECT c.name AS name, COUNT(*) AS n FROM flights f \
             JOIN carriers c ON f.carrier = c.code \
             WHERE f.distance > ? AND c.name != ? GROUP BY c.name ORDER BY name",
        )
        .unwrap();
    assert_eq!(p.param_count(), 2);
    // The optimized logical plan was cached at prepare time.
    assert!(p.fired_rules().contains(&"projection_pruning"), "{p:?}");
    let logical = p.logical_plan().to_string();
    assert!(logical.contains("Join[carrier = code]"), "{logical}");
    for (thr, skip, expect_rows) in [(0i64, "Delta", 3), (400, "none", 2), (99999, "none", 0)] {
        let out = s
            .query_prepared(&p, &[Value::Int(thr), Value::Str(skip.into())])
            .unwrap();
        assert_eq!(out.num_rows(), expect_rows, "thr {thr}");
        // Bit-identical to the unprepared statement with inlined values.
        let direct = s
            .query(&format!(
                "SELECT c.name AS name, COUNT(*) AS n FROM flights f \
                 JOIN carriers c ON f.carrier = c.code \
                 WHERE f.distance > {thr} AND c.name != '{skip}' \
                 GROUP BY c.name ORDER BY name"
            ))
            .unwrap();
        tables_identical(&out, &direct);
    }
    // Dropping either relation makes the prepared statement stale.
    s.execute("DROP TABLE carriers").unwrap();
    let err = s
        .execute_prepared(&p, &[Value::Int(0), Value::Str("x".into())])
        .unwrap_err();
    assert!(matches!(err, MosaicError::Bind(_)), "{err}");
}

/// A lone aliased relation routes through the scope binder: qualified
/// references resolve and results match the bare-name spelling.
#[test]
fn single_relation_alias_and_qualified_refs() {
    let engine = flights_engine();
    let s = engine.session();
    let a = s
        .query(
            "SELECT f.carrier AS carrier, f.distance AS distance FROM flights f \
                WHERE f.distance > 400 ORDER BY f.distance",
        )
        .unwrap();
    let b = s
        .query("SELECT carrier, distance FROM flights WHERE distance > 400 ORDER BY distance")
        .unwrap();
    tables_identical(&a, &b);
    // Qualifying by the table name works without an alias, too.
    let c = s
        .query(
            "SELECT flights.carrier AS carrier, flights.distance AS distance \
                FROM flights WHERE flights.distance > 400 ORDER BY flights.distance",
        )
        .unwrap();
    tables_identical(&b, &c);
}

/// Pushdown must never change error behavior: a safe single-sided
/// conjunct does NOT move below the join when an unsafe conjunct stays
/// residual, because pushing it would shrink the rows the unsafe
/// conjunct evaluates over (here: a NaN comparison errs in both
/// optimizer modes — or in neither).
#[test]
fn pushdown_preserves_error_identity_with_unsafe_residual() {
    let mut fb = TableBuilder::new(Schema::new(vec![
        Field::new("k", DataType::Str),
        Field::new("i", DataType::Int),
        Field::new("fval", DataType::Float),
    ]));
    fb.push_row(vec!["a".into(), V::Int(1), V::Float(f64::NAN)])
        .unwrap();
    let fact = fb.finish();
    let mut db = TableBuilder::new(Schema::new(vec![Field::new("code", DataType::Str)]));
    db.push_row(vec!["a".into()]).unwrap();
    let dim = db.finish();
    let engine = Arc::new(MosaicEngine::new());
    engine.register_table("fact", fact).unwrap();
    engine.register_table("dim", dim).unwrap();
    // `f.i > 3` is pushable on its own, but the residual `f.fval > 0.5`
    // can error (NaN): pushing would filter the NaN row out before the
    // residual runs and turn the error into an empty result.
    let sql = "SELECT COUNT(*) FROM fact f JOIN dim c ON f.k = c.code \
               WHERE f.fval > 0.5 AND f.i > 3";
    let off = engine.session().with_optimizer(false).query(sql);
    let on = engine.session().with_optimizer(true).query(sql);
    match (off, on) {
        (Err(a), Err(b)) => assert_eq!(a.to_string(), b.to_string()),
        other => panic!("optimizer changed the outcome: {other:?}"),
    }
}

/// ORDER BY may reference a SELECT item's alias over a join, exactly
/// like the single-relation path (sort keys resolve against the
/// projection output first).
#[test]
fn order_by_alias_over_join() {
    let engine = flights_engine();
    for optimizer in [false, true] {
        let out = engine
            .session()
            .with_optimizer(optimizer)
            .query(
                "SELECT f.carrier AS carrier, f.distance AS d FROM flights f \
                 JOIN carriers c ON f.carrier = c.code WHERE f.distance > 100 \
                 ORDER BY d DESC LIMIT 2",
            )
            .unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.value(0, 1), V::Int(1500));
        assert_eq!(out.value(1, 1), V::Int(900));
        // Aggregate alias in ORDER BY, too.
        let out = engine
            .session()
            .with_optimizer(optimizer)
            .query(
                "SELECT c.name AS name, COUNT(*) AS n FROM flights f \
                 JOIN carriers c ON f.carrier = c.code GROUP BY c.name \
                 ORDER BY n DESC, name",
            )
            .unwrap();
        assert_eq!(out.value(0, 0), V::Str("American".into()));
        assert_eq!(out.value(0, 1), V::Int(2));
    }
}

/// `SELECT *` over a join yields both sides' columns in scope order
/// with duplicate names qualified.
#[test]
fn wildcard_join_output_naming() {
    let engine = Arc::new(MosaicEngine::new());
    engine
        .session()
        .execute(
            "CREATE TABLE l (k INT, v INT);
             CREATE TABLE r (k INT, w INT);
             INSERT INTO l VALUES (1, 10), (2, 20);
             INSERT INTO r VALUES (1, 100), (1, 200);",
        )
        .unwrap();
    let out = engine
        .session()
        .query("SELECT * FROM l JOIN r ON l.k = r.k")
        .unwrap();
    let names: Vec<&str> = out
        .schema()
        .fields()
        .iter()
        .map(|f| f.name.as_str())
        .collect();
    assert_eq!(names, vec!["l.k", "v", "r.k", "w"]);
    // Canonical (left, right) order: l row 0 matches r rows 0 and 1.
    assert_eq!(out.num_rows(), 2);
    assert_eq!(out.value(0, 3), V::Int(100));
    assert_eq!(out.value(1, 3), V::Int(200));
}

/// The weight column of a joined sample survives projection pruning
/// even when the rest of the sample's columns are pruned away.
#[test]
fn pruning_keeps_joined_sample_weight() {
    let engine = Arc::new(MosaicEngine::new());
    engine
        .session()
        .execute(
            "CREATE GLOBAL POPULATION Pop (carrier TEXT, distance INT, extra1 INT, extra2 INT);
             CREATE SAMPLE S AS (SELECT * FROM Pop);
             INSERT INTO S VALUES ('AA', 100, 1, 2), ('WN', 900, 3, 4);
             CREATE TABLE carriers (code TEXT, name TEXT);
             INSERT INTO carriers VALUES ('AA', 'American'), ('WN', 'Southwest');",
        )
        .unwrap();
    engine.set_sample_weights("S", vec![3.0, 5.0]).unwrap();
    let s = engine.session().with_optimizer(true);
    let p = s
        .prepare(
            "SELECT c.name AS name, SUM(s.weight) AS w FROM S s \
             JOIN carriers c ON s.carrier = c.code GROUP BY c.name ORDER BY name",
        )
        .unwrap();
    assert!(p.fired_rules().contains(&"projection_pruning"), "{p:?}");
    let out = s.query_prepared(&p, &[]).unwrap();
    assert_eq!(out.value(0, 1), V::Float(3.0));
    assert_eq!(out.value(1, 1), V::Float(5.0));
}

/// Cross-checking the hash join against a brute-force reference over a
/// build of Int keys crossing the f64 coercion edge and a float probe.
#[test]
fn mixed_type_keys_join_like_sql_cmp() {
    let mut lb = TableBuilder::new(Schema::new(vec![Field::new("k", DataType::Int)]));
    for v in [1i64, 2, 3, (1i64 << 53) + 1] {
        lb.push_row(vec![V::Int(v)]).unwrap();
    }
    let left = lb.finish();
    let mut rb = TableBuilder::new(Schema::new(vec![
        Field::new("code", DataType::Float),
        Field::new("tag", DataType::Str),
    ]));
    for (v, t) in [(2.0f64, "two"), ((1u64 << 53) as f64, "big"), (9.0, "none")] {
        rb.push_row(vec![V::Float(v), V::Str(t.into())]).unwrap();
    }
    let right = rb.finish();
    let engine = Arc::new(MosaicEngine::new());
    engine.register_table("l", left.clone()).unwrap();
    engine.register_table("r", right.clone()).unwrap();
    let keys = vec![(parse_expr("k").unwrap(), parse_expr("code").unwrap())];
    let reference = reference_join(&left, "l", &right, "r", &keys).unwrap();
    for optimizer in [false, true] {
        let out = engine
            .session()
            .with_optimizer(optimizer)
            .query("SELECT * FROM l JOIN r ON l.k = r.code")
            .unwrap();
        tables_identical(&out, &reference);
    }
    // 2 matches 2.0; 2^53+1 collapses onto 2^53 under f64 coercion —
    // exactly what sql_cmp (and therefore the reference) does.
    assert_eq!(reference.num_rows(), 2);
}
