//! Statistical correctness of the debiasing pipeline: IPF against ground
//! truth on synthetic workloads, the M-SWG on the spiral, and the
//! Bayesian-network/IPF combination (the Themis pipeline).

use std::collections::HashMap;

use mosaic_bench::flights::{self, FlightsConfig};
use mosaic_bench::spiral::{self, SpiralConfig};
use mosaic_bn::{BayesNet, BnConfig};
use mosaic_stats::{wasserstein_1d, WassersteinOrder};
use mosaic_stats::{weighted, Ipf, IpfConfig, Marginal, WeightedEmpirical};
use mosaic_storage::Table;
use mosaic_swg::{MSwg, SwgConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn col_f64(t: &Table, name: &str) -> Vec<Option<f64>> {
    t.column_by_name(name).unwrap().to_f64_vec()
}

#[test]
fn ipf_recovers_population_mean_on_flights() {
    let data = flights::generate(&FlightsConfig {
        population: 30_000,
        marginal_bins: 24,
        ..FlightsConfig::default()
    });
    let truth = weighted::weighted_mean(
        &col_f64(&data.population, "elapsed_time"),
        &vec![1.0; data.population.num_rows()],
    )
    .unwrap();
    let biased = weighted::weighted_mean(
        &col_f64(&data.sample, "elapsed_time"),
        &vec![1.0; data.sample.num_rows()],
    )
    .unwrap();
    let ipf = Ipf::new(&data.sample, &data.marginals, &data.binners).unwrap();
    let (w, _) = ipf.fit(None, &IpfConfig::default());
    let debiased = weighted::weighted_mean(&col_f64(&data.sample, "elapsed_time"), &w).unwrap();
    // The biased sample is way off; IPF should close most of the gap.
    let bias_err = (biased - truth).abs();
    let ipf_err = (debiased - truth).abs();
    assert!(
        ipf_err < bias_err * 0.15,
        "IPF error {ipf_err:.2} vs biased error {bias_err:.2} (truth {truth:.2})"
    );
}

#[test]
fn ipf_single_marginal_satisfied_exactly() {
    // With one marginal, Deming–Stephan raking satisfies every reachable
    // cell exactly after one pass.
    let data = flights::generate(&FlightsConfig {
        population: 20_000,
        marginal_bins: 16,
        ..FlightsConfig::default()
    });
    let target = &data.marginals[0]; // (carrier, elapsed_time)
    let ipf = Ipf::new(&data.sample, std::slice::from_ref(target), &data.binners).unwrap();
    let (w, report) = ipf.fit(None, &IpfConfig::default());
    assert!(report.converged, "{report:?}");
    let weighted_m = Marginal::from_table(
        &data.sample,
        &["carrier", "elapsed_time"],
        Some(&w),
        &data.binners,
    )
    .unwrap();
    let mut checked = 0;
    for (key, got) in weighted_m.iter() {
        if got <= 0.0 {
            continue;
        }
        let want = target.get(key).unwrap_or(0.0);
        assert!(
            (got - want).abs() < 1e-6 * (1.0 + want),
            "cell {key:?}: got {got:.3}, want {want:.3}"
        );
        checked += 1;
    }
    assert!(checked > 10, "checked {checked} cells");
}

#[test]
fn ipf_multiple_marginals_reduce_error_even_without_convergence() {
    // Four overlapping 2-D marginals over a sample missing many cells are
    // generally unsatisfiable simultaneously (the report surfaces the
    // empty target cells — SEMI-OPEN's false negatives); IPF must still
    // shrink the marginal error dramatically vs the unweighted sample.
    let data = flights::generate(&FlightsConfig {
        population: 20_000,
        marginal_bins: 16,
        ..FlightsConfig::default()
    });
    let ipf = Ipf::new(&data.sample, &data.marginals, &data.binners).unwrap();
    let (w, report) = ipf.fit(
        None,
        &IpfConfig::default()
            .with_max_iterations(500)
            .with_tolerance(1e-6),
    );
    assert!(report.empty_target_cells > 0);
    let target = &data.marginals[0];
    let err_of = |weights: &[f64]| {
        let m = Marginal::from_table(
            &data.sample,
            &["carrier", "elapsed_time"],
            Some(weights),
            &data.binners,
        )
        .unwrap();
        let mut total = 0.0;
        for (key, want) in target.iter() {
            let got = m.get(key).unwrap_or(0.0);
            total += (got - want).abs();
        }
        total
    };
    let raw_err = err_of(&vec![
        data.population.num_rows() as f64
            / data.sample.num_rows() as f64;
        data.sample.num_rows()
    ]);
    let ipf_err = err_of(&w);
    // A large part of the residual is the unreachable mass in the empty
    // target cells (identical for any reweighting of the sample), so the
    // improvement is bounded; require a solid constant-factor reduction.
    assert!(
        ipf_err < raw_err * 0.7,
        "IPF L1 marginal error {ipf_err:.0} vs uniform {raw_err:.0}"
    );
}

#[test]
fn mswg_debiases_the_spiral_sample() {
    let data = spiral::generate(&SpiralConfig {
        population: 10_000,
        sample: 1_000,
        ..SpiralConfig::default()
    });
    let model = MSwg::fit(
        &data.sample,
        &data.marginals,
        SwgConfig::paper_spiral()
            .with_epochs(25)
            .with_batch_size(256),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(2);
    let gen = model.generate(1_000, &mut rng);
    for attr in ["x", "y"] {
        let pop =
            WeightedEmpirical::from_values(col_f64(&data.population, attr).into_iter().flatten());
        let biased =
            WeightedEmpirical::from_values(col_f64(&data.sample, attr).into_iter().flatten());
        let generated = WeightedEmpirical::from_values(col_f64(&gen, attr).into_iter().flatten());
        let d_biased = wasserstein_1d(&biased, &pop, WassersteinOrder::W1);
        let d_gen = wasserstein_1d(&generated, &pop, WassersteinOrder::W1);
        assert!(
            d_gen < d_biased * 0.5,
            "{attr}: generated W1 {d_gen:.4} should be well under biased W1 {d_biased:.4}"
        );
    }
}

#[test]
fn themis_pipeline_ipf_then_bayes_net() {
    // The Themis approach (§4.1): IPF-reweight, then fit the explicit
    // model on the reweighted sample.
    let data = flights::generate(&FlightsConfig {
        population: 20_000,
        marginal_bins: 16,
        ..FlightsConfig::default()
    });
    let ipf = Ipf::new(&data.sample, &data.marginals, &data.binners).unwrap();
    let (w, _) = ipf.fit(None, &IpfConfig::default());
    let bn = BayesNet::fit(&data.sample, Some(&w), &BnConfig::default()).unwrap();
    let mut rng = StdRng::seed_from_u64(4);
    let synth = bn.sample(20_000, &mut rng);
    let truth = weighted::weighted_mean(
        &col_f64(&data.population, "elapsed_time"),
        &vec![1.0; data.population.num_rows()],
    )
    .unwrap();
    let biased = weighted::weighted_mean(
        &col_f64(&data.sample, "elapsed_time"),
        &vec![1.0; data.sample.num_rows()],
    )
    .unwrap();
    let synth_mean = weighted::weighted_mean(
        &col_f64(&synth, "elapsed_time"),
        &vec![1.0; synth.num_rows()],
    )
    .unwrap();
    assert!(
        (synth_mean - truth).abs() < (biased - truth).abs() * 0.3,
        "BN synthetic mean {synth_mean:.1} vs truth {truth:.1} (biased {biased:.1})"
    );
}

#[test]
fn binned_marginals_round_trip_through_engine_conventions() {
    // Marginal::from_table and Ipf must agree on binned cell keys.
    let data = spiral::generate(&SpiralConfig {
        population: 3_000,
        sample: 500,
        ..SpiralConfig::default()
    });
    let sample_m = Marginal::from_table(&data.sample, &["x"], None, &data.binners).unwrap();
    let pop_m = &data.marginals[0];
    // Every sample cell key must exist in the population marginal (same
    // binning ⇒ same midpoint keys).
    let mut matched = 0;
    for (key, _) in sample_m.iter() {
        assert!(
            pop_m.get(key).is_some(),
            "sample cell {key:?} missing from population marginal"
        );
        matched += 1;
    }
    assert!(matched > 5);
    let _unused: HashMap<(), ()> = HashMap::new();
}
