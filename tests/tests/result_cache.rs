//! The epoch-invalidated result cache, end to end:
//!
//! * A cache **hit is bit-identical** to uncached re-execution — for the
//!   planner-oracle template subset, across the optimizer × parallelism
//!   matrix, and across visibilities (CLOSED, SEMI-OPEN IPF, OPEN with
//!   an explicit seed).
//! * **Writes invalidate**: INSERT / DROP+recreate / sample writes
//!   between identical queries never serve stale rows — the post-write
//!   answer always equals a fresh uncached execution.
//! * A **concurrent writer** racing cached readers never exposes a torn
//!   or stale count: every observed COUNT is a whole number of batches
//!   and monotonic per reader.
//! * The byte-bounded **LRU** respects its capacity, evicts, and
//!   refuses oversized entries; the plan cache powers the zero-parse
//!   hot path and drops stale entries after DDL.
//! * Over the wire, `SetOption result_cache=on|off|clear` gates and
//!   clears the cache per connection, and `CacheStats` frames report
//!   engine-wide counters.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mosaic_core::{EngineOptions, MosaicEngine, QueryResult, Session, Table, Value};
use mosaic_serve::{Client, ServeConfig, Server, ServerHandle};

/// Aggregate-heavy planner-oracle subset (all deterministic at any
/// thread count, so a cached answer is provably THE answer).
const TEMPLATES: &[&str] = &[
    "SELECT COUNT(*) FROM t",
    "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k",
    "SELECT SUM(i), AVG(f), MIN(i), MAX(f) FROM t",
    "SELECT k, i FROM t WHERE i > 40 ORDER BY i DESC, k LIMIT 20",
    "SELECT k, SUM(i) AS s FROM t WHERE i > 0 GROUP BY k ORDER BY s DESC, k LIMIT 5",
    "SELECT COUNT(*) FROM t WHERE f > 0.0 OR i < 0",
    "SELECT k, AVG(f) AS a, MIN(i), MAX(i) FROM t GROUP BY k ORDER BY k",
];

/// An engine with the cache pinned to its 64 MB default — explicit, so
/// this suite's hit assertions hold even when CI sets
/// `MOSAIC_RESULT_CACHE=off` for the re-execution pass.
fn cache_engine() -> Arc<MosaicEngine> {
    Arc::new(MosaicEngine::with_options(
        EngineOptions::default().with_result_cache(64),
    ))
}

fn seed_engine(rows: usize) -> Arc<MosaicEngine> {
    let engine = cache_engine();
    seed_table(&engine.session(), rows);
    engine
}

fn seed_table(session: &Session, rows: usize) {
    let mut sql = String::from("CREATE TABLE t (k TEXT, i INT, f FLOAT);\n");
    let mut values = Vec::with_capacity(rows);
    for r in 0..rows {
        let k = format!("'g{}'", r % 17);
        let i = if r % 7 == 0 {
            "NULL".into()
        } else {
            ((r % 200) as i64 - 60).to_string()
        };
        let f = if r % 9 == 0 {
            "NULL".into()
        } else {
            format!("{:.3}", (r as f64) * 0.5 - 55.0)
        };
        values.push(format!("({k}, {i}, {f})"));
    }
    for chunk in values.chunks(2048) {
        sql.push_str("INSERT INTO t VALUES ");
        sql.push_str(&chunk.join(", "));
        sql.push_str(";\n");
    }
    session.execute(&sql).unwrap();
}

fn assert_identical(a: &Table, b: &Table, ctx: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{ctx}: row count");
    assert_eq!(a.num_columns(), b.num_columns(), "{ctx}: column count");
    for c in 0..a.num_columns() {
        let (fa, fb) = (a.schema().field(c), b.schema().field(c));
        assert_eq!(fa.name, fb.name, "{ctx}: field {c} name");
        assert_eq!(fa.data_type, fb.data_type, "{ctx}: field {c} type");
    }
    for r in 0..a.num_rows() {
        for c in 0..a.num_columns() {
            // `Value` equality is total and compares floats by bit
            // pattern, so this is literal bit-identity.
            assert_eq!(a.value(r, c), b.value(r, c), "{ctx}: cell ({r},{c})");
        }
    }
}

fn is_hit(r: &QueryResult) -> bool {
    r.notes.iter().any(|n| n.starts_with("result cache hit"))
}

/// Every template: uncached baseline == first cached run (miss) ==
/// second cached run (hit), across the optimizer × parallelism matrix.
#[test]
fn cached_hit_bit_identical_to_uncached_across_matrix() {
    let engine = seed_engine(4_000);
    for optimizer in [true, false] {
        for threads in [1, 3] {
            let uncached = engine
                .session()
                .with_result_cache(false)
                .with_optimizer(optimizer)
                .with_parallelism(threads);
            let cached = engine
                .session()
                .with_optimizer(optimizer)
                .with_parallelism(threads);
            for sql in TEMPLATES {
                let ctx = format!("{sql} (optimizer={optimizer}, threads={threads})");
                let baseline = uncached.execute(sql).unwrap();
                assert!(!is_hit(&baseline), "{ctx}: opted-out session must miss");
                let first = cached.execute(sql).unwrap();
                let second = cached.execute(sql).unwrap();
                assert!(is_hit(&second), "{ctx}: second run should hit");
                assert_identical(&baseline.table, &first.table, &ctx);
                assert_identical(&baseline.table, &second.table, &ctx);
            }
        }
    }
    let stats = engine.cache_stats();
    assert!(stats.hits > 0, "matrix runs should have produced hits");
}

/// Prepared statements participate: each distinct parameter vector
/// caches separately, and a hit equals the literal-inlined uncached run.
#[test]
fn prepared_params_cache_per_value() {
    let engine = seed_engine(3_000);
    let cached = engine.session();
    let uncached = engine.session().with_result_cache(false);
    let prepared = cached
        .prepare("SELECT k, COUNT(*) AS c FROM t WHERE i > ? GROUP BY k ORDER BY k")
        .unwrap();
    for thr in [0i64, 25, 50] {
        let baseline = uncached
            .execute(&format!(
                "SELECT k, COUNT(*) AS c FROM t WHERE i > {thr} GROUP BY k ORDER BY k"
            ))
            .unwrap();
        let first = cached
            .execute_prepared(&prepared, &[Value::Int(thr)])
            .unwrap();
        let second = cached
            .execute_prepared(&prepared, &[Value::Int(thr)])
            .unwrap();
        assert!(is_hit(&second), "param {thr}: second run should hit");
        assert_identical(&baseline.table, &first.table, &format!("param {thr} miss"));
        assert_identical(&baseline.table, &second.table, &format!("param {thr} hit"));
    }
    // Different parameter values never collide.
    let a = cached
        .execute_prepared(&prepared, &[Value::Int(0)])
        .unwrap();
    let b = cached
        .execute_prepared(&prepared, &[Value::Int(50)])
        .unwrap();
    assert!(is_hit(&a) && is_hit(&b));
    let same = a.table.num_rows() == b.table.num_rows()
        && (0..a.table.num_rows()).all(|r| a.table.value(r, 1) == b.table.value(r, 1));
    assert!(!same, "thresholds 0 and 50 must produce different counts");
}

/// The §2 population world: SEMI-OPEN (IPF) answers cache and hit
/// bit-identically, and sample writes invalidate them.
#[test]
fn semi_open_caches_and_sample_writes_invalidate() {
    let engine = cache_engine();
    engine
        .session()
        .execute(
            "CREATE TABLE Report (country TEXT, email TEXT, reported_count INT);
             INSERT INTO Report (country, reported_count) VALUES ('UK', 600), ('FR', 400);
             INSERT INTO Report (email, reported_count) VALUES ('Yahoo', 300), ('AOL', 700);
             CREATE GLOBAL POPULATION Migrants (country TEXT, email TEXT);
             CREATE METADATA Migrants_M1 AS
               (SELECT country, reported_count FROM Report WHERE country IS NOT NULL);
             CREATE METADATA Migrants_M2 AS
               (SELECT email, reported_count FROM Report WHERE email IS NOT NULL);
             CREATE SAMPLE YahooSample AS (SELECT * FROM Migrants WHERE email = 'Yahoo');
             INSERT INTO YahooSample VALUES ('UK','Yahoo'), ('UK','Yahoo'), ('FR','Yahoo');",
        )
        .unwrap();
    let q = "SELECT SEMI-OPEN country, COUNT(*) FROM Migrants GROUP BY country ORDER BY country";
    let cached = engine.session();
    let uncached = engine.session().with_result_cache(false);

    let baseline = uncached.execute(q).unwrap();
    let first = cached.execute(q).unwrap();
    let second = cached.execute(q).unwrap();
    assert!(is_hit(&second), "SEMI-OPEN second run should hit");
    assert_identical(&baseline.table, &first.table, "semi-open miss");
    assert_identical(&baseline.table, &second.table, "semi-open hit");

    // A write to the backing sample bumps the population's epoch: the
    // next run must re-execute and equal a fresh uncached answer.
    cached
        .execute("INSERT INTO YahooSample VALUES ('FR','Yahoo'), ('FR','Yahoo')")
        .unwrap();
    let after = cached.execute(q).unwrap();
    assert!(!is_hit(&after), "sample write must invalidate the entry");
    let fresh = uncached.execute(q).unwrap();
    assert_identical(&fresh.table, &after.table, "post-write semi-open");

    // CREATE SAMPLE on the population invalidates again.
    let warm = cached.execute(q).unwrap();
    assert!(is_hit(&warm));
    cached
        .execute(
            "CREATE SAMPLE Second AS (SELECT * FROM Migrants WHERE email = 'Yahoo');
             INSERT INTO Second VALUES ('UK','Yahoo')",
        )
        .unwrap();
    let after_ddl = cached.execute(q).unwrap();
    assert!(!is_hit(&after_ddl), "CREATE SAMPLE must invalidate");
    let fresh = uncached.execute(q).unwrap();
    assert_identical(&fresh.table, &after_ddl.table, "post-CREATE SAMPLE");
}

/// INSERT between identical queries: the cached path never serves the
/// stale pre-write count.
#[test]
fn insert_invalidates_cached_count() {
    let engine = seed_engine(1_000);
    let s = engine.session();
    let q = "SELECT COUNT(*) FROM t";
    let before = s.execute(q).unwrap();
    assert!(is_hit(&s.execute(q).unwrap()));
    s.execute("INSERT INTO t VALUES ('z', 1, 1.0), ('z', 2, 2.0)")
        .unwrap();
    let after = s.execute(q).unwrap();
    assert!(!is_hit(&after), "INSERT must invalidate");
    let (a, b) = (
        before.table.value(0, 0).as_f64().unwrap(),
        after.table.value(0, 0).as_f64().unwrap(),
    );
    assert_eq!(b - a, 2.0, "post-write count reflects the insert");
    let stats = engine.cache_stats();
    assert!(stats.invalidations > 0, "stale entry should be dropped");
}

/// DROP + recreate with the same name: the fingerprint matches but the
/// epoch does not — the answer comes from the new table.
#[test]
fn drop_and_recreate_never_serves_old_table() {
    let engine = cache_engine();
    let s = engine.session();
    s.execute("CREATE TABLE t (k TEXT, i INT, f FLOAT); INSERT INTO t VALUES ('a', 1, 1.0)")
        .unwrap();
    let q = "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k";
    s.execute(q).unwrap();
    assert!(is_hit(&s.execute(q).unwrap()));
    s.execute(
        "DROP TABLE t;
         CREATE TABLE t (k TEXT, i INT, f FLOAT);
         INSERT INTO t VALUES ('x', 9, 9.0), ('y', 8, 8.0)",
    )
    .unwrap();
    let after = s.execute(q).unwrap();
    assert!(!is_hit(&after), "DROP must invalidate");
    assert_eq!(after.table.num_rows(), 2);
    assert_eq!(after.table.value(0, 0), Value::Str("x".into()));
    assert_eq!(after.table.value(1, 0), Value::Str("y".into()));
}

/// A writer inserting fixed-size batches races cached readers: every
/// served COUNT must be a whole number of batches and monotonic per
/// reader — a cached entry may be *old news* for at most the instant it
/// is validated, never stale.
#[test]
fn concurrent_writer_vs_cached_readers() {
    const BATCH: usize = 10;
    const BATCHES: usize = 40;
    let engine = cache_engine();
    engine
        .session()
        .execute("CREATE TABLE t (k TEXT, i INT, f FLOAT)")
        .unwrap();
    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..4 {
            let engine = Arc::clone(&engine);
            let done = Arc::clone(&done);
            readers.push(scope.spawn(move || {
                let s = engine.session();
                let mut last = 0i64;
                let mut observations = 0usize;
                while !done.load(Ordering::Relaxed) {
                    let r = s.execute("SELECT COUNT(*) FROM t").unwrap();
                    let n = match r.table.value(0, 0) {
                        Value::Int(n) => n,
                        v => panic!("COUNT returned {v:?}"),
                    };
                    assert_eq!(
                        n % BATCH as i64,
                        0,
                        "torn read: {n} is not a whole number of batches"
                    );
                    assert!(n >= last, "stale read: count went {last} -> {n}");
                    last = n;
                    observations += 1;
                }
                observations
            }));
        }
        let writer = engine.session();
        let row = "('w', 1, 1.0)";
        let batch_sql = format!("INSERT INTO t VALUES {}", [row; BATCH].join(", "));
        for _ in 0..BATCHES {
            writer.execute(&batch_sql).unwrap();
        }
        done.store(true, Ordering::Relaxed);
        let total: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
        assert!(total > 0, "readers should have observed something");
    });
    let r = engine.session().execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.table.value(0, 0), Value::Int((BATCH * BATCHES) as i64));
}

/// The byte-bounded LRU: capacity is respected, old entries evict, and
/// an entry larger than the whole cache is never admitted.
#[test]
fn lru_respects_byte_bound_and_refuses_oversized() {
    // 1 MB cache over a table whose full scan is bigger than that.
    let engine = Arc::new(MosaicEngine::with_options(
        EngineOptions::default().with_result_cache(1),
    ));
    let s = engine.session();
    let mut sql = String::from("CREATE TABLE big (a INT, b INT);\n");
    let values: Vec<String> = (0..80_000).map(|r| format!("({r}, {})", r * 2)).collect();
    for chunk in values.chunks(4096) {
        sql.push_str("INSERT INTO big VALUES ");
        sql.push_str(&chunk.join(", "));
        sql.push_str(";\n");
    }
    s.execute(&sql).unwrap();

    // Oversized: a full-scan result (~1.25 MB) exceeds the 1 MB cap.
    s.execute("SELECT a, b FROM big").unwrap();
    let again = s.execute("SELECT a, b FROM big").unwrap();
    assert!(!is_hit(&again), "oversized results must not be admitted");
    assert_eq!(engine.cache_stats().entries, 0);

    // Distinct mid-size results (~1/8 MB each) force LRU eviction.
    for m in 2..18 {
        s.execute(&format!("SELECT a FROM big WHERE a % {m} = 0"))
            .unwrap();
    }
    let stats = engine.cache_stats();
    assert!(stats.entries > 0, "mid-size results should be cached");
    assert!(
        stats.bytes <= stats.capacity_bytes,
        "cache bytes {} exceed capacity {}",
        stats.bytes,
        stats.capacity_bytes
    );
    assert!(stats.evictions > 0, "16 x ~1/8 MB into 1 MB must evict");
    // Evicted or not, every re-run still answers correctly.
    let r = s.execute("SELECT a FROM big WHERE a % 17 = 0").unwrap();
    assert_eq!(r.table.num_rows(), 80_000usize.div_ceil(17));
}

/// The plan cache powers the zero-parse hot path: `execute_cached` is
/// `None` until the statement has gone through the full path once, then
/// serves without parsing, then goes cold again after DDL.
#[test]
fn plan_cache_hot_path_and_ddl_staleness() {
    let engine = seed_engine(500);
    let s = engine.session();
    let sql = "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k";
    assert!(
        s.execute_cached(sql).is_none(),
        "nothing cached before the first full execution"
    );
    let full = s.execute(sql).unwrap();
    let hot = s
        .execute_cached(sql)
        .expect("plan should be cached now")
        .unwrap();
    assert_identical(&full.table, &hot.table, "hot path");
    assert!(engine.cache_stats().plan_hits > 0);
    s.execute("DROP TABLE t").unwrap();
    assert!(
        s.execute_cached(sql).is_none(),
        "DDL must make the cached plan stale"
    );
}

/// A session that opted out, and an engine built with the cache off,
/// never produce hits.
#[test]
fn opt_outs_never_hit() {
    let engine = seed_engine(500);
    let off = engine.session().with_result_cache(false);
    for _ in 0..3 {
        assert!(!is_hit(&off.execute("SELECT COUNT(*) FROM t").unwrap()));
    }
    let disabled = Arc::new(MosaicEngine::with_options(
        EngineOptions::default().with_result_cache(0),
    ));
    seed_table(&disabled.session(), 100);
    let s = disabled.session();
    for _ in 0..3 {
        assert!(!is_hit(&s.execute("SELECT COUNT(*) FROM t").unwrap()));
    }
    assert_eq!(disabled.cache_stats().entries, 0);
}

/// EXPLAIN reports the fingerprint and the cache verdict, and the
/// verdict tracks reality: not cached → cached → off → OPEN-ineligible.
#[test]
fn explain_reports_fingerprint_and_verdict() {
    let engine = seed_engine(500);
    let s = engine.session();
    let lines = |r: &QueryResult| -> String {
        (0..r.table.num_rows())
            .map(|i| r.table.value(i, 0).to_string())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let q = "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k";
    let text = lines(&s.execute(&format!("EXPLAIN {q}")).unwrap());
    assert!(text.contains("fingerprint: "), "{text}");
    assert!(
        text.contains("result cache: eligible, not cached"),
        "{text}"
    );
    s.execute(q).unwrap();
    let text = lines(&s.execute(&format!("EXPLAIN {q}")).unwrap());
    assert!(text.contains("result cache: eligible, cached"), "{text}");
    // The fingerprint is stable across EXPLAIN runs.
    let fp = text
        .lines()
        .find(|l| l.trim_start().starts_with("fingerprint: "))
        .unwrap()
        .trim()
        .to_string();
    let text2 = lines(&s.execute(&format!("EXPLAIN {q}")).unwrap());
    assert!(text2.contains(&fp), "{text2}");

    let off = engine.session().with_result_cache(false);
    let text = lines(&off.execute(&format!("EXPLAIN {q}")).unwrap());
    assert!(text.contains("result cache: off"), "{text}");

    // OPEN without an explicit seed can never cache; a pinned seed can.
    s.execute(
        "CREATE GLOBAL POPULATION Pop (k TEXT);
         CREATE SAMPLE PS AS (SELECT * FROM Pop);
         INSERT INTO PS VALUES ('a'), ('b')",
    )
    .unwrap();
    let open_q = "EXPLAIN SELECT OPEN k, COUNT(*) FROM Pop GROUP BY k";
    let text = lines(&s.execute(open_q).unwrap());
    assert!(
        text.contains("ineligible (OPEN without an explicit seed)"),
        "{text}"
    );
    let seeded = engine.session().with_seed(7);
    let text = lines(&seeded.execute(open_q).unwrap());
    assert!(!text.contains("ineligible"), "{text}");
}

// ---------------------------------------------------------------------
// Wire protocol: SetOption result_cache + CacheStats frames.
// ---------------------------------------------------------------------

fn start(engine: Arc<MosaicEngine>) -> ServerHandle {
    let server = Server::bind(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let (handle, _join) = server.spawn();
    handle
}

fn stat(table: &Table, name: &str) -> i64 {
    for r in 0..table.num_rows() {
        if table.value(r, 0) == Value::Str(name.into()) {
            if let Value::Int(v) = table.value(r, 1) {
                return v;
            }
        }
    }
    panic!("stat {name} missing from CacheStats result");
}

/// Per-connection gate + engine-wide stats and clear, over the wire —
/// with every response still bit-identical to in-process execution.
#[test]
fn serve_set_option_and_cache_stats() {
    let engine = seed_engine(2_000);
    let expected = engine
        .session()
        .with_result_cache(false)
        .execute(TEMPLATES[1])
        .unwrap();
    let handle = start(Arc::clone(&engine));
    let mut client = Client::connect(handle.addr()).unwrap();

    client.set_option("result_cache", "off").unwrap();
    for _ in 0..2 {
        let r = client.query(TEMPLATES[1]).unwrap();
        assert!(
            !r.notes.iter().any(|n| n.starts_with("result cache hit")),
            "opted-out connection must never hit"
        );
        assert_identical(&expected.table, &r.table, "wire, cache off");
    }

    client.set_option("result_cache", "on").unwrap();
    client.query(TEMPLATES[1]).unwrap();
    let r = client.query(TEMPLATES[1]).unwrap();
    assert!(
        r.notes.iter().any(|n| n.starts_with("result cache hit")),
        "second cached run over the wire should hit; notes: {:?}",
        r.notes
    );
    assert_identical(&expected.table, &r.table, "wire, cache hit");

    let stats = client.cache_stats().unwrap();
    assert!(stat(&stats.table, "hits") >= 1);
    assert!(stat(&stats.table, "entries") >= 1);
    assert!(stat(&stats.table, "capacity_bytes") > 0);

    client.set_option("result_cache", "clear").unwrap();
    let stats = client.cache_stats().unwrap();
    assert_eq!(stat(&stats.table, "entries"), 0);
    // Counters survive the clear; the entries are gone.
    assert!(stat(&stats.table, "hits") >= 1);
    client.close().unwrap();
    handle.shutdown();
}
