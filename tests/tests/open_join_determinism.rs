//! Seeded determinism of OPEN replicate joins: the generate+query loop
//! over a joined plan must be a pure function of the session seed —
//! bit-identical across worker-thread counts and aggregate partition
//! counts, distinct across seeds, and stable under the
//! prepare-once/execute-from-N-sessions pattern.

use std::sync::Arc;

use mosaic_core::{EngineOptions, MosaicEngine, OpenBackend, OpenOptions, Table};
use mosaic_swg::SwgConfig;

fn tiny_swg() -> SwgConfig {
    SwgConfig::default()
        .with_hidden_dim(24)
        .with_hidden_layers(2)
        .with_latent_dim(Some(4))
        .with_lambda(0.0)
        .with_projections(16)
        .with_batch_size(128)
        .with_epochs(60)
        .with_steps_per_epoch(Some(2))
        .with_learning_rate(5e-3)
        .with_seed(3)
}

/// The §2 world plus an auxiliary region table the population joins to.
fn setup() -> Arc<MosaicEngine> {
    let engine = Arc::new(MosaicEngine::with_options(
        EngineOptions::default().with_open(
            OpenOptions::default()
                .with_backend(OpenBackend::Swg(tiny_swg()))
                .with_num_generated(4)
                .with_rows_per_sample(Some(600)),
        ),
    ));
    engine
        .session()
        .execute(
            "CREATE TABLE Report (country TEXT, email TEXT, reported_count INT);
             INSERT INTO Report (country, reported_count) VALUES ('UK', 600), ('FR', 400);
             INSERT INTO Report (email, reported_count) VALUES ('Yahoo', 300), ('AOL', 700);
             CREATE GLOBAL POPULATION Migrants (country TEXT, email TEXT);
             CREATE METADATA Migrants_M1 AS
               (SELECT country, reported_count FROM Report WHERE country IS NOT NULL);
             CREATE METADATA Migrants_M2 AS
               (SELECT email, reported_count FROM Report WHERE email IS NOT NULL);
             CREATE SAMPLE YahooSample AS (SELECT * FROM Migrants WHERE email = 'Yahoo');
             CREATE TABLE Regions (country TEXT, region TEXT);
             INSERT INTO Regions VALUES ('UK', 'north'), ('FR', 'south');",
        )
        .unwrap();
    let mut rows = vec!["('UK','Yahoo')"; 30];
    rows.extend(vec!["('FR','Yahoo')"; 20]);
    engine
        .session()
        .execute(&format!(
            "INSERT INTO YahooSample VALUES {}",
            rows.join(",")
        ))
        .unwrap();
    engine
}

const JOIN_SQL: &str = "SELECT OPEN c.region AS region, COUNT(*) AS n \
                        FROM Migrants m JOIN Regions c ON m.country = c.country \
                        GROUP BY c.region ORDER BY region";

fn assert_identical(a: &Table, b: &Table, context: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row count");
    assert_eq!(a.num_columns(), b.num_columns(), "{context}: column count");
    for r in 0..a.num_rows() {
        for c in 0..a.num_columns() {
            assert_eq!(a.value(r, c), b.value(r, c), "{context}: cell ({r},{c})");
        }
    }
}

/// Same seed ⇒ bit-identical OPEN join answers across worker-thread
/// counts {1, 2, 8} and aggregate partition counts {1, 16}. The
/// replicate loop pins per-run seeds and the one-thread-budget rule, so
/// neither knob may leak into the result.
#[test]
fn open_join_same_seed_identical_across_threads_and_partitions() {
    let engine = setup();
    let baseline = engine
        .session()
        .with_seed(7)
        .with_parallelism(1)
        .with_agg_partitions(1)
        .execute(JOIN_SQL)
        .unwrap();
    assert!(
        baseline
            .notes
            .iter()
            .any(|n| n.contains("generated samples")),
        "OPEN join should run the replicate loop: {:?}",
        baseline.notes
    );
    for threads in [1usize, 2, 8] {
        for partitions in [1usize, 16] {
            let out = engine
                .session()
                .with_seed(7)
                .with_parallelism(threads)
                .with_agg_partitions(partitions)
                .query(JOIN_SQL)
                .unwrap();
            assert_identical(
                &out,
                &baseline.table,
                &format!("threads={threads}, partitions={partitions}"),
            );
        }
    }
}

/// Different seeds ⇒ different replicates: the generated tuples change,
/// so the population-scale aggregate does too.
#[test]
fn open_join_different_seeds_produce_distinct_replicates() {
    let engine = setup();
    let a = engine.session().with_seed(7).query(JOIN_SQL).unwrap();
    let b = engine.session().with_seed(8).query(JOIN_SQL).unwrap();
    let differs = a.num_rows() != b.num_rows()
        || (0..a.num_rows()).any(|r| (0..a.num_columns()).any(|c| a.value(r, c) != b.value(r, c)));
    assert!(
        differs,
        "seeds 7 and 8 produced identical OPEN join answers:\n{a}"
    );
    // And the seed fully determines the answer: re-running seed 7 on a
    // *fresh* engine (fresh model training) reproduces it exactly.
    let again = setup().session().with_seed(7).query(JOIN_SQL).unwrap();
    assert_identical(&a, &again, "seed 7 across engines");
}

/// Prepare the OPEN join once, execute it from 4 concurrent sessions:
/// every execution must match the serial baseline bit for bit — the
/// shared model cache and the prepared plans are safe under concurrency
/// and the per-run seeds don't depend on who executes first.
#[test]
fn open_join_prepared_concurrent_sessions_agree() {
    let engine = setup();
    let prepared = engine.session().prepare(JOIN_SQL).unwrap();
    assert_eq!(prepared.param_count(), 0);
    let baseline = engine
        .session()
        .with_seed(7)
        .query_prepared(&prepared, &[])
        .unwrap();
    // Sanity: the prepared path agrees with the ad-hoc path.
    let adhoc = engine.session().with_seed(7).query(JOIN_SQL).unwrap();
    assert_identical(&baseline, &adhoc, "prepared vs ad-hoc");
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|ti| {
                let engine = &engine;
                let prepared = &prepared;
                let baseline = &baseline;
                s.spawn(move || {
                    let session = engine.session().with_seed(7).with_parallelism(1 + ti);
                    for rep in 0..3 {
                        let got = session.query_prepared(prepared, &[]).unwrap();
                        assert_identical(
                            &got,
                            baseline,
                            &format!("session {ti}, repetition {rep}"),
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    // A population-scale sanity check on the answer itself: the region
    // totals live near the declared country marginal (UK 600 / FR 400).
    let total: f64 = (0..baseline.num_rows())
        .filter_map(|r| baseline.value(r, 1).as_f64())
        .sum();
    assert!(
        (500.0..1500.0).contains(&total),
        "population-scale joined total, got {total}"
    );
}
