//! OPEN query processing across the full stack: tuple generation with the
//! M-SWG and Bayesian-network backends, model caching, and the §3.3
//! false-negative/false-positive semantics.

use mosaic_bn::BnConfig;
use mosaic_core::{MosaicDb, OpenBackend, Value, Visibility};
use mosaic_swg::SwgConfig;

fn tiny_swg() -> SwgConfig {
    SwgConfig::default()
        .with_hidden_dim(24)
        .with_hidden_layers(2)
        .with_latent_dim(Some(4))
        .with_lambda(0.0)
        .with_projections(16)
        .with_batch_size(128)
        .with_epochs(60)
        .with_steps_per_epoch(Some(2))
        .with_learning_rate(5e-3)
        .with_seed(3)
}

/// A world with two categorical attributes where the sample only covers
/// one provider (the §2 shape, shrunk).
fn setup(backend: OpenBackend) -> MosaicDb {
    let mut db = MosaicDb::new();
    db.options_mut().open.backend = backend;
    db.options_mut().open.num_generated = 4;
    db.options_mut().open.rows_per_sample = Some(600);
    db.execute(
        "CREATE TABLE Report (country TEXT, email TEXT, reported_count INT);
         INSERT INTO Report (country, reported_count) VALUES ('UK', 600), ('FR', 400);
         INSERT INTO Report (email, reported_count) VALUES ('Yahoo', 300), ('AOL', 700);
         CREATE GLOBAL POPULATION Migrants (country TEXT, email TEXT);
         CREATE METADATA Migrants_M1 AS
           (SELECT country, reported_count FROM Report WHERE country IS NOT NULL);
         CREATE METADATA Migrants_M2 AS
           (SELECT email, reported_count FROM Report WHERE email IS NOT NULL);
         CREATE SAMPLE YahooSample AS (SELECT * FROM Migrants WHERE email = 'Yahoo');",
    )
    .unwrap();
    let mut rows = vec!["('UK','Yahoo')"; 30];
    rows.extend(vec!["('FR','Yahoo')"; 20]);
    db.execute(&format!(
        "INSERT INTO YahooSample VALUES {}",
        rows.join(",")
    ))
    .unwrap();
    db
}

#[test]
fn open_generates_missing_email_providers() {
    let mut db = setup(OpenBackend::Swg(tiny_swg()));
    let open = db
        .execute("SELECT OPEN email, COUNT(*) FROM Migrants GROUP BY email ORDER BY email")
        .unwrap();
    assert_eq!(open.visibility, Some(Visibility::Open));
    let emails: Vec<String> = (0..open.table.num_rows())
        .map(|r| open.table.value(r, 0).to_string())
        .collect();
    assert!(
        emails.iter().any(|e| e == "AOL"),
        "OPEN answer should contain the AOL provider missing from the sample; got {emails:?}"
    );
    // And the counts are at population scale (total ~1000).
    let total: f64 = (0..open.table.num_rows())
        .filter_map(|r| open.table.value(r, 1).as_f64())
        .sum();
    assert!(
        (500.0..1500.0).contains(&total),
        "population-scale total, got {total}"
    );
}

#[test]
fn semi_open_cannot_generate_missing_providers() {
    let mut db = setup(OpenBackend::Swg(tiny_swg()));
    let semi = db
        .execute("SELECT SEMI-OPEN email, COUNT(*) FROM Migrants GROUP BY email")
        .unwrap();
    for r in 0..semi.table.num_rows() {
        assert_eq!(
            semi.table.value(r, 0),
            Value::Str("Yahoo".into()),
            "SEMI-OPEN must not invent tuples (zero false positives)"
        );
    }
}

#[test]
fn bayes_net_backend_also_answers_open_queries() {
    let mut db = setup(OpenBackend::BayesNet(BnConfig::default()));
    let open = db
        .execute("SELECT OPEN country, COUNT(*) FROM Migrants GROUP BY country ORDER BY country")
        .unwrap();
    assert!(open.table.num_rows() >= 2);
    // Country marginal should be roughly respected (IPF-weighted fit):
    // UK 600 vs FR 400.
    let fr = open.table.value(0, 1).as_f64().unwrap();
    let uk = open.table.value(1, 1).as_f64().unwrap();
    assert!(uk > fr, "UK {uk} should exceed FR {fr}");
}

#[test]
fn model_cache_hits_on_repeat_queries() {
    let mut db = setup(OpenBackend::Swg(tiny_swg()));
    let first = db.execute("SELECT OPEN COUNT(*) FROM Migrants").unwrap();
    assert!(
        first.notes.iter().any(|n| n.contains("trained")),
        "first OPEN query trains: {:?}",
        first.notes
    );
    let second = db.execute("SELECT OPEN COUNT(*) FROM Migrants").unwrap();
    assert!(
        second.notes.iter().any(|n| n.contains("cache hit")),
        "second OPEN query reuses the model: {:?}",
        second.notes
    );
    // Mutating the catalog invalidates the cache.
    db.execute("INSERT INTO YahooSample VALUES ('UK','Yahoo')")
        .unwrap();
    let third = db.execute("SELECT OPEN COUNT(*) FROM Migrants").unwrap();
    assert!(
        third.notes.iter().any(|n| n.contains("trained")),
        "catalog mutation retrains: {:?}",
        third.notes
    );
}

#[test]
fn open_answers_are_deterministic_given_seed() {
    let mut db1 = setup(OpenBackend::Swg(tiny_swg()));
    let mut db2 = setup(OpenBackend::Swg(tiny_swg()));
    let a = db1.execute("SELECT OPEN COUNT(*) FROM Migrants").unwrap();
    let b = db2.execute("SELECT OPEN COUNT(*) FROM Migrants").unwrap();
    assert_eq!(
        a.table.value(0, 0),
        b.table.value(0, 0),
        "same seed, same answer"
    );
}

#[test]
fn non_aggregate_open_query_returns_generated_tuples() {
    let mut db = setup(OpenBackend::Swg(tiny_swg()));
    let r = db
        .execute("SELECT OPEN country, email FROM Migrants LIMIT 50")
        .unwrap();
    assert!(r.table.num_rows() > 0 && r.table.num_rows() <= 50);
    assert!(r
        .notes
        .iter()
        .any(|n| n.contains("non-aggregate OPEN query")));
}

#[test]
fn open_requires_metadata() {
    let mut db = MosaicDb::new();
    db.options_mut().open.backend = OpenBackend::Swg(tiny_swg());
    db.execute(
        "CREATE GLOBAL POPULATION P (a TEXT);
         CREATE SAMPLE S AS (SELECT * FROM P);
         INSERT INTO S VALUES ('x');",
    )
    .unwrap();
    assert!(db.execute("SELECT OPEN COUNT(*) FROM P").is_err());
}

#[test]
fn open_count_tracks_marginal_total() {
    let mut db = setup(OpenBackend::Swg(tiny_swg()));
    let r = db.execute("SELECT OPEN COUNT(*) FROM Migrants").unwrap();
    let count = r.table.value(0, 0).as_f64().unwrap();
    // Marginal total is 1000; generated samples are uniformly reweighted
    // to it.
    assert!(
        (900.0..1100.0).contains(&count),
        "OPEN COUNT(*) = {count}, want ~1000"
    );
}
