//! Admission control keeps the engine inside its worker-thread budget
//! no matter how many clients connect or how many threads each asks
//! for. This suite lives in its **own test binary** on purpose: the
//! worker-thread gauge (`mosaic_core::worker_thread_peak`) is
//! process-wide, and cargo runs test binaries sequentially while tests
//! *within* a binary run in parallel — a sibling test's query would
//! pollute the peak.

use std::sync::Arc;
use std::thread;

use mosaic_core::{DataType, Field, MosaicEngine, Schema, Table, TableBuilder, Value, MORSEL_ROWS};
use mosaic_serve::{Client, ServeConfig, Server};

/// A multi-morsel table (8+ morsels) so parallel scans genuinely want
/// every worker they can get.
fn build_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Str),
        Field::new("i", DataType::Int),
        Field::new("f", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for r in 0..rows {
        b.push_row(vec![
            Value::Str(format!("g{}", r % 31)),
            if r % 7 == 0 {
                Value::Null
            } else {
                Value::Int((r % 997) as i64 - 300)
            },
            Value::Float((r as f64) * 0.125 - 1000.0),
        ])
        .unwrap();
    }
    b.finish()
}

/// 8× thread oversubscription: budget 3, 24 clients each demanding
/// `threads=8`. The engine's spawned-worker peak must never exceed the
/// budget; the permit pool must actually reach it (the budget is used,
/// not just respected); every answer must equal the single-threaded
/// result (admission changes latency, never results); and no permit
/// may leak.
#[test]
fn worker_threads_stay_within_budget_under_oversubscription() {
    const BUDGET: usize = 3;
    const CLIENTS: usize = 24;
    const ROUNDS: usize = 6;

    let engine = Arc::new(MosaicEngine::new());
    engine
        .register_table("t", build_table(MORSEL_ROWS * 8 + 123))
        .unwrap();

    let queries = [
        "SELECT k, COUNT(*) AS c, SUM(i) AS s FROM t GROUP BY k ORDER BY k",
        "SELECT COUNT(*) FROM t WHERE i > 100",
        "SELECT k, AVG(f) AS a, MIN(i), MAX(i) FROM t GROUP BY k ORDER BY a DESC, k LIMIT 7",
    ];
    // Expected results through a plain in-process session (parallelism
    // never changes results, so one reference point suffices).
    let session = engine.session();
    let expected: Vec<Table> = queries.iter().map(|q| session.query(q).unwrap()).collect();

    let server = Server::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServeConfig::default()
            .with_max_connections(CLIENTS + 4)
            .with_worker_budget(BUDGET),
    )
    .unwrap();
    let (handle, _join) = server.spawn();
    let addr = handle.addr().to_string();
    assert_eq!(handle.worker_budget(), BUDGET);

    // Phase 1 — a lone client asking for 8 threads gets clamped to the
    // full budget: with no contenders its fair share is all 3 permits,
    // so the gauge must observe >1 spawned worker but never more than
    // BUDGET. (Skipped on single-core runners where the morsel driver
    // executes inline and spawns no workers.)
    mosaic_core::reset_worker_thread_peak();
    {
        let mut client = Client::connect(addr.as_str()).unwrap();
        client.set_option("threads", "8").unwrap();
        let got = client.query(queries[0]).unwrap();
        assert_eq!(got.table.num_rows(), expected[0].num_rows());
        client.close().unwrap();
    }
    let solo_peak = mosaic_core::worker_thread_peak();
    assert!(
        solo_peak <= BUDGET,
        "lone 8-thread client spawned {solo_peak} workers, budget is {BUDGET}"
    );

    // Phase 2 — 24 clients × 8 requested threads, all at once.
    mosaic_core::reset_worker_thread_peak();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|ci| {
            let addr = addr.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr.as_str()).unwrap();
                client.set_option("threads", "8").unwrap();
                for round in 0..ROUNDS {
                    let qi = (ci + round) % expected.len();
                    let got = client.query(queries[qi]).unwrap();
                    let want = &expected[qi];
                    assert_eq!(got.table.num_rows(), want.num_rows(), "client {ci} q{qi}");
                    for r in 0..want.num_rows() {
                        for c in 0..want.num_columns() {
                            assert_eq!(
                                got.table.value(r, c),
                                want.value(r, c),
                                "client {ci} q{qi} cell ({r},{c})"
                            );
                        }
                    }
                }
                client.close().unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let peak = mosaic_core::worker_thread_peak();
    assert!(
        peak <= BUDGET,
        "engine spawned {peak} concurrent workers under oversubscription, budget is {BUDGET}"
    );
    // The budget was genuinely exercised: the permit pool saturated.
    assert_eq!(
        handle.permit_peak(),
        BUDGET,
        "permit pool never reached its budget — admission was not exercised"
    );
    assert_eq!(handle.permits_in_use(), 0, "permits leaked");
    handle.shutdown();
}
