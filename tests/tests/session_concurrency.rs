//! Concurrency guarantees of the shared-engine session API:
//!
//! * N scoped threads sharing one `Arc<MosaicEngine>` through
//!   independent sessions must produce results **bit-identical** to a
//!   serial run of the same statements — for every planner_oracle query
//!   template, on a multi-morsel table.
//! * One `Prepared` statement executed concurrently from ≥ 4 sessions
//!   must match `MosaicDb::execute` with the parameter inlined as a
//!   literal, value for value.
//! * A writer session (catalog write locks) interleaving with reader
//!   sessions must never expose a torn state: every observed COUNT is a
//!   whole number of inserted batches and monotonic per reader.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use mosaic_core::{MosaicDb, MosaicEngine, Table, Value, MORSEL_ROWS};

/// The planner_oracle query templates (29 shapes over table `t`), with
/// the generated threshold pinned — re-run here through the session API.
const QUERIES: &[&str] = &[
    "SELECT * FROM t",
    "SELECT k, i FROM t WHERE i > {thr}",
    "SELECT i + f, i * 2, f / 2 FROM t",
    "SELECT i / 0, i % 3, -i, -f FROM t",
    "SELECT 2 + i, 2 * i, 2 - i, 7 % i, {thr} - i FROM t",
    "SELECT i FROM t WHERE i % 7 = 0",
    "SELECT k FROM t WHERE i IS NULL OR f IS NULL",
    "SELECT k FROM t WHERE k IN ('v0', 'v1') ORDER BY i DESC LIMIT 5",
    "SELECT i FROM t WHERE i BETWEEN -10 AND {thr} ORDER BY i",
    "SELECT f FROM t WHERE f * 2.0 > 10.0 AND i <= {thr}",
    "SELECT k FROM t WHERE NOT i = {thr} AND k IS NOT NULL",
    "SELECT i FROM t WHERE i IN (1, 2, NULL)",
    "SELECT i FROM t WHERE i NOT IN (3, {thr})",
    "SELECT k, i, f FROM t ORDER BY k, i DESC, f LIMIT 7",
    "SELECT i > {thr}, f IS NULL, k = 'v1' FROM t",
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(f), COUNT(i) FROM t",
    "SELECT SUM(i), AVG(f), MIN(i), MAX(f) FROM t",
    "SELECT MIN(k), MAX(k) FROM t",
    "SELECT SUM(i) / COUNT(*) FROM t",
    "SELECT SUM(i + f), AVG(i * 2) FROM t",
    "SELECT COUNT(*) FROM t WHERE f > 0.0 OR i < 0",
    "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k",
    "SELECT k, SUM(i) AS s FROM t GROUP BY k ORDER BY s DESC, k LIMIT 3",
    "SELECT k, AVG(f) AS a, MIN(i), MAX(i) FROM t GROUP BY k ORDER BY k",
    "SELECT k, COUNT(i) AS c FROM t WHERE f IS NOT NULL GROUP BY k ORDER BY c DESC, k",
    "SELECT i, COUNT(*) FROM t GROUP BY i ORDER BY i LIMIT 10",
    "SELECT f, COUNT(*) FROM t GROUP BY f ORDER BY f LIMIT 10",
    "SELECT k, i, COUNT(*) FROM t GROUP BY k, i ORDER BY k, i",
];

/// A multi-morsel mixed-type table with NULLs (the planner_oracle data
/// shape, scaled past one morsel so the parallel driver really splits).
fn oracle_table(rows: usize) -> Table {
    use mosaic_core::{DataType, Field, Schema, TableBuilder};
    let schema = Schema::new(vec![
        Field::new("k", DataType::Str),
        Field::new("i", DataType::Int),
        Field::new("f", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for r in 0..rows {
        b.push_row(vec![
            if r % 5 == 0 {
                Value::Null
            } else {
                Value::Str(format!("v{}", r % 3))
            },
            if r % 11 == 0 {
                Value::Null
            } else {
                Value::Int((r % 83) as i64 - 40)
            },
            if r % 13 == 0 {
                Value::Null
            } else {
                Value::Float((r % 59) as f64 * 0.75 - 22.0)
            },
        ])
        .unwrap();
    }
    b.finish()
}

fn assert_identical(a: &Table, b: &Table, context: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{context}: row count");
    assert_eq!(a.num_columns(), b.num_columns(), "{context}: column count");
    for c in 0..a.num_columns() {
        let (fa, fb) = (a.schema().field(c), b.schema().field(c));
        assert_eq!(fa.name, fb.name, "{context}: field {c} name");
        assert_eq!(fa.data_type, fb.data_type, "{context}: field {c} type");
    }
    for r in 0..a.num_rows() {
        for c in 0..a.num_columns() {
            assert_eq!(a.value(r, c), b.value(r, c), "{context}: cell ({r},{c})");
        }
    }
}

/// N threads × independent sessions × every oracle template ==
/// bit-identical to the serial run over the same shared engine.
#[test]
fn concurrent_sessions_match_serial_run() {
    let engine = Arc::new(MosaicEngine::new());
    engine
        .register_table("t", oracle_table(2 * MORSEL_ROWS + 777))
        .unwrap();
    let queries: Vec<String> = QUERIES.iter().map(|q| q.replace("{thr}", "7")).collect();

    // Serial baseline through one session.
    let serial = engine.session();
    let baseline: Vec<Result<Table, String>> = queries
        .iter()
        .map(|q| serial.query(q).map_err(|e| e.to_string()))
        .collect();

    const THREADS: usize = 6;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|ti| {
                let engine = &engine;
                let queries = &queries;
                let baseline = &baseline;
                s.spawn(move || {
                    // Each thread gets its own session (odd threads cap
                    // their worker pool — thread count never changes
                    // results).
                    let session = if ti % 2 == 0 {
                        engine.session()
                    } else {
                        engine.session().with_parallelism(1 + ti)
                    };
                    for (q, base) in queries.iter().zip(baseline) {
                        let got = session.query(q).map_err(|e| e.to_string());
                        match (base, &got) {
                            (Ok(b), Ok(g)) => {
                                assert_identical(b, g, &format!("thread {ti}, {q:?}"))
                            }
                            (Err(b), Err(g)) => {
                                assert_eq!(b, g, "thread {ti}, {q:?}: error mismatch")
                            }
                            _ => panic!("thread {ti}, {q:?}: ok/err divergence"),
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

/// Acceptance: one prepared parameterized aggregate, executed
/// concurrently from ≥ 4 sessions over one shared engine, returns
/// bit-identical results to `MosaicDb::execute` with the literal
/// inlined — and every session shares the same `Prepared` object.
#[test]
fn prepared_concurrent_matches_mosaicdb_execute() {
    let table = oracle_table(2 * MORSEL_ROWS + 123);
    let engine = Arc::new(MosaicEngine::new());
    engine.register_table("t", table.clone()).unwrap();

    let prepared = engine
        .session()
        .prepare(
            "SELECT k, COUNT(*) AS c, SUM(i) AS s, AVG(f) AS a \
             FROM t WHERE i > ? GROUP BY k ORDER BY k",
        )
        .unwrap();
    assert_eq!(prepared.param_count(), 1);

    // Baselines through the legacy single-owner API on a second engine
    // holding the same data.
    let thresholds: [i64; 4] = [-10, 0, 7, 25];
    let mut db = MosaicDb::new();
    db.register_table("t", table).unwrap();
    let baselines: Vec<Table> = thresholds
        .iter()
        .map(|thr| {
            db.query(&format!(
                "SELECT k, COUNT(*) AS c, SUM(i) AS s, AVG(f) AS a \
                 FROM t WHERE i > {thr} GROUP BY k ORDER BY k"
            ))
            .unwrap()
        })
        .collect();

    std::thread::scope(|s| {
        let handles: Vec<_> = thresholds
            .iter()
            .zip(&baselines)
            .map(|(&thr, base)| {
                let engine = &engine;
                let prepared = &prepared;
                s.spawn(move || {
                    let session = engine.session();
                    for _ in 0..3 {
                        let got = session
                            .query_prepared(prepared, &[Value::Int(thr)])
                            .unwrap();
                        assert_identical(base, &got, &format!("threshold {thr}"));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

/// Writer-vs-readers catalog locking: INSERTs take the write lock, so a
/// reader must only ever observe a whole number of committed batches,
/// and its observations must be monotonic.
#[test]
fn writer_and_readers_interleave_consistently() {
    const BATCH: usize = 10;
    const BATCHES: usize = 40;
    let engine = Arc::new(MosaicEngine::new());
    engine.session().execute("CREATE TABLE w (x INT)").unwrap();
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        let writer = {
            let engine = &engine;
            let done = &done;
            s.spawn(move || {
                let session = engine.session();
                for b in 0..BATCHES {
                    let values: Vec<String> =
                        (0..BATCH).map(|i| format!("({})", b * BATCH + i)).collect();
                    session
                        .execute(&format!("INSERT INTO w VALUES {}", values.join(", ")))
                        .unwrap();
                }
                done.store(true, Ordering::Release);
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let engine = &engine;
                let done = &done;
                s.spawn(move || {
                    let session = engine.session();
                    let mut last = 0i64;
                    let mut observations = 0usize;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let out = session.query("SELECT COUNT(*) FROM w").unwrap();
                        let count = match out.value(0, 0) {
                            Value::Int(n) => n,
                            other => panic!("COUNT returned {other:?}"),
                        };
                        assert_eq!(count % BATCH as i64, 0, "reader saw a torn batch: {count}");
                        assert!(count >= last, "count went backwards: {last} -> {count}");
                        last = count;
                        observations += 1;
                        if finished {
                            break;
                        }
                    }
                    assert_eq!(
                        last,
                        (BATCH * BATCHES) as i64,
                        "final count after writer done"
                    );
                    observations
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    });
}

/// DDL (CREATE/DROP) racing prepared execution: the stale-source check
/// turns a dropped relation into a clean bind error, never a wrong
/// answer or a poisoned engine.
#[test]
fn prepared_execution_races_ddl_cleanly() {
    let engine = Arc::new(MosaicEngine::new());
    engine.register_table("t", oracle_table(500)).unwrap();
    let prepared = engine
        .session()
        .prepare("SELECT COUNT(*) FROM t WHERE i > ?")
        .unwrap();

    std::thread::scope(|s| {
        let runner = {
            let engine = &engine;
            let prepared = &prepared;
            s.spawn(move || {
                let session = engine.session();
                let mut ok = 0usize;
                let mut stale = 0usize;
                for _ in 0..200 {
                    match session.execute_prepared(prepared, &[Value::Int(0)]) {
                        Ok(_) => ok += 1,
                        // Once the table is gone, the only acceptable
                        // failure is the stale/unknown-relation error.
                        Err(e) => {
                            let msg = e.to_string();
                            assert!(
                                msg.contains("stale") || msg.contains("unknown relation"),
                                "unexpected error under DDL race: {msg}"
                            );
                            stale += 1;
                        }
                    }
                }
                (ok, stale)
            })
        };
        let dropper = {
            let engine = &engine;
            s.spawn(move || {
                let session = engine.session();
                session.execute("DROP TABLE t").unwrap();
            })
        };
        dropper.join().unwrap();
        let (ok, stale) = runner.join().unwrap();
        assert_eq!(ok + stale, 200);
    });
}
