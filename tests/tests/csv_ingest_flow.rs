//! The "open data" ingestion flow the paper motivates (§1): a scientist
//! downloads a sample CSV and a published aggregate CSV from a data
//! repository, loads both, and queries the population — exercising
//! `mosaic_storage::csv` together with the engine.

use mosaic_core::{MosaicDb, Value};
use mosaic_storage::csv::{read_csv_str, write_csv_string};

const AGGREGATE_CSV: &str = "\
region,reported_count
north,4000
south,6000
";

const SAMPLE_CSV: &str = "\
region,income
north,50
north,55
north,60
north,45
south,80
";

#[test]
fn csv_to_population_query() {
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE TABLE CensusReport (region TEXT, reported_count INT);
         CREATE GLOBAL POPULATION People (region TEXT, income INT);
         CREATE SAMPLE WebSurvey AS (SELECT * FROM People);",
    )
    .unwrap();

    // Load the aggregate CSV into the auxiliary table via SQL inserts.
    let agg = read_csv_str(AGGREGATE_CSV).unwrap();
    for r in 0..agg.num_rows() {
        db.execute(&format!(
            "INSERT INTO CensusReport VALUES ('{}', {})",
            agg.value(r, 0),
            agg.value(r, 1)
        ))
        .unwrap();
    }
    db.execute("CREATE METADATA People_M1 AS (SELECT region, reported_count FROM CensusReport);")
        .unwrap();

    // Load the sample CSV straight into the sample (schema-coerced).
    let sample = read_csv_str(SAMPLE_CSV).unwrap();
    db.ingest_sample("WebSurvey", sample).unwrap();

    // The biased web survey over-represents the north (4:1); the census
    // says the south is bigger (6000 vs 4000).
    let r = db
        .execute("SELECT SEMI-OPEN region, COUNT(*) FROM People GROUP BY region ORDER BY region")
        .unwrap();
    assert_eq!(r.table.num_rows(), 2);
    assert!((r.table.value(0, 1).as_f64().unwrap() - 4000.0).abs() < 1e-6);
    assert!((r.table.value(1, 1).as_f64().unwrap() - 6000.0).abs() < 1e-6);

    // Weighted average income: north rows carry 1000 each, the single
    // south row carries 6000.
    let avg = db
        .execute("SELECT SEMI-OPEN AVG(income) FROM People")
        .unwrap();
    let expect = (4000.0 * 52.5 + 6000.0 * 80.0) / 10_000.0;
    assert!((avg.table.value(0, 0).as_f64().unwrap() - expect).abs() < 1e-6);
}

#[test]
fn query_results_export_as_csv() {
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE TABLE T (name TEXT, v INT);
         INSERT INTO T VALUES ('a, b', 1), ('c', 2);",
    )
    .unwrap();
    let out = db.execute("SELECT name, v FROM T ORDER BY v").unwrap();
    let csv = write_csv_string(&out.table).unwrap();
    // Embedded comma round-trips through quoting.
    let back = read_csv_str(&csv).unwrap();
    assert_eq!(back.value(0, 0), Value::Str("a, b".into()));
    assert_eq!(back.value(1, 1), Value::Int(2));
}

#[test]
fn ingest_reorders_columns_by_name() {
    // The CSV's column order differs from the sample's declared order;
    // ingest_sample matches by name.
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE GLOBAL POPULATION P (a TEXT, b INT);
         CREATE SAMPLE S AS (SELECT * FROM P);",
    )
    .unwrap();
    let t = read_csv_str("b,a\n7,x\n8,y\n").unwrap();
    db.ingest_sample("S", t).unwrap();
    let r = db.execute("SELECT a, b FROM S ORDER BY b").unwrap();
    assert_eq!(r.table.value(0, 0), Value::Str("x".into()));
    assert_eq!(r.table.value(0, 1), Value::Int(7));
}

#[test]
fn ingest_rejects_missing_columns() {
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE GLOBAL POPULATION P (a TEXT, b INT);
         CREATE SAMPLE S AS (SELECT * FROM P);",
    )
    .unwrap();
    let t = read_csv_str("a\nx\n").unwrap();
    assert!(db.ingest_sample("S", t).is_err());
}
