//! Property-based tests on the cross-crate invariants that hold for *any*
//! data: IPF satisfies reachable marginals, weighted aggregates equal
//! their manual rewrite, Wasserstein metric axioms, encoder round-trips,
//! and parser total-ness on generated queries.

use std::collections::HashMap;

use mosaic_core::run_select;
use mosaic_sql::{parse, Statement};
use mosaic_stats::{wasserstein_1d, Ipf, IpfConfig, Marginal, WassersteinOrder, WeightedEmpirical};
use mosaic_storage::{DataType, Field, Schema, Table, TableBuilder, Value};
use mosaic_swg::Encoder;
use proptest::prelude::*;

fn small_cat_table(cats: &[u8]) -> Table {
    let schema = Schema::new(vec![Field::new("c", DataType::Str)]);
    let mut b = TableBuilder::new(schema);
    for &c in cats {
        b.push_row(vec![Value::Str(format!("v{}", c % 4))]).unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// IPF always reproduces a 1-D marginal exactly on the categories the
    /// sample contains, for any sample composition and any positive
    /// targets.
    #[test]
    fn ipf_satisfies_reachable_marginal(
        cats in proptest::collection::vec(0u8..4, 1..60),
        targets in proptest::collection::vec(1.0f64..1000.0, 4),
    ) {
        let table = small_cat_table(&cats);
        let mut m = Marginal::new(vec!["c".into()]);
        for (i, &t) in targets.iter().enumerate() {
            m.add(vec![Value::Str(format!("v{i}"))], t);
        }
        let ipf = Ipf::new(&table, std::slice::from_ref(&m), &HashMap::new()).unwrap();
        let (w, report) = ipf.fit(None, &IpfConfig::default());
        prop_assert!(report.converged);
        // Weighted counts per category match the targets for categories
        // present in the sample.
        let mut got = [0.0f64; 4];
        for (row, &c) in cats.iter().enumerate() {
            got[(c % 4) as usize] += w[row];
        }
        for i in 0..4 {
            if cats.iter().any(|&c| (c % 4) as usize == i) {
                prop_assert!((got[i] - targets[i]).abs() < 1e-6,
                    "cat {i}: got {} want {}", got[i], targets[i]);
            }
        }
    }

    /// Weighted COUNT(*) equals SUM(weight) — the paper's §5.3 rewrite —
    /// for any weights, and weighted AVG lies within the data range.
    #[test]
    fn weighted_aggregates_match_rewrite(
        vals in proptest::collection::vec(-100.0f64..100.0, 1..50),
        raw_weights in proptest::collection::vec(0.1f64..10.0, 50),
    ) {
        let weights = &raw_weights[..vals.len()];
        let schema = Schema::new(vec![Field::new("x", DataType::Float)]);
        let mut b = TableBuilder::new(schema);
        for &v in &vals {
            b.push_row(vec![v.into()]).unwrap();
        }
        let t = b.finish();
        let stmt = match parse("SELECT COUNT(*), AVG(x), SUM(x) FROM t").unwrap().pop().unwrap() {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let out = run_select(&stmt, &t, Some(weights)).unwrap();
        let wsum: f64 = weights.iter().sum();
        prop_assert!((out.value(0, 0).as_f64().unwrap() - wsum).abs() < 1e-9);
        let avg = out.value(0, 1).as_f64().unwrap();
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
        let manual: f64 = vals.iter().zip(weights).map(|(v, w)| v * w).sum();
        prop_assert!((out.value(0, 2).as_f64().unwrap() - manual).abs() < 1e-6);
    }

    /// Exact 1-D Wasserstein is a metric on these inputs: symmetric,
    /// zero iff identical supports/weights, triangle inequality.
    #[test]
    fn wasserstein_metric_axioms(
        a in proptest::collection::vec((-50.0f64..50.0, 0.1f64..5.0), 1..20),
        b in proptest::collection::vec((-50.0f64..50.0, 0.1f64..5.0), 1..20),
        c in proptest::collection::vec((-50.0f64..50.0, 0.1f64..5.0), 1..20),
    ) {
        let ea = WeightedEmpirical::from_pairs(a.clone());
        let eb = WeightedEmpirical::from_pairs(b);
        let ec = WeightedEmpirical::from_pairs(c);
        let dab = wasserstein_1d(&ea, &eb, WassersteinOrder::W1);
        let dba = wasserstein_1d(&eb, &ea, WassersteinOrder::W1);
        prop_assert!((dab - dba).abs() < 1e-9, "symmetry: {dab} vs {dba}");
        prop_assert!(dab >= 0.0);
        let daa = wasserstein_1d(&ea, &ea, WassersteinOrder::W1);
        prop_assert!(daa.abs() < 1e-9, "identity: {daa}");
        let dac = wasserstein_1d(&ea, &ec, WassersteinOrder::W1);
        let dcb = wasserstein_1d(&ec, &eb, WassersteinOrder::W1);
        prop_assert!(dab <= dac + dcb + 1e-7, "triangle: {dab} > {dac} + {dcb}");
    }

    /// Encoder round trip: decode(encode(t)) == t for any mixed table
    /// (categoricals exact, numerics within float tolerance).
    #[test]
    fn encoder_round_trips(
        rows in proptest::collection::vec((0u8..5, -1000i64..1000, -10.0f64..10.0), 1..40),
    ) {
        let schema = Schema::new(vec![
            Field::new("c", DataType::Str),
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for (c, i, f) in &rows {
            b.push_row(vec![Value::Str(format!("k{c}")), (*i).into(), (*f).into()]).unwrap();
        }
        let t = b.finish();
        let enc = Encoder::fit(&t, &HashMap::new());
        let m = enc.encode_table(&t).unwrap();
        let back = enc.decode_matrix(&m);
        for r in 0..t.num_rows() {
            prop_assert_eq!(back.value(r, 0), t.value(r, 0));
            prop_assert_eq!(back.value(r, 1), t.value(r, 1));
            let orig = t.value(r, 2).as_f64().unwrap();
            let dec = back.value(r, 2).as_f64().unwrap();
            prop_assert!((orig - dec).abs() < 1e-6 * (1.0 + orig.abs()));
        }
    }

    /// The parser never panics and, on round-trippable queries, produces a
    /// SELECT with the same projection arity.
    #[test]
    fn parser_handles_generated_selects(
        ncols in 1usize..5,
        vis in 0u8..4,
        limit in proptest::option::of(0usize..100),
    ) {
        let cols: Vec<String> = (0..ncols).map(|i| format!("col{i}")).collect();
        let vis_kw = match vis {
            0 => "",
            1 => "CLOSED ",
            2 => "SEMI-OPEN ",
            _ => "OPEN ",
        };
        let mut q = format!("SELECT {}{}", vis_kw, cols.join(", "));
        q.push_str(" FROM rel WHERE col0 > 1 AND col0 < 100");
        if let Some(l) = limit {
            q.push_str(&format!(" LIMIT {l}"));
        }
        let stmts = parse(&q).unwrap();
        match &stmts[0] {
            Statement::Select(s) => {
                prop_assert_eq!(s.items.len(), ncols);
                prop_assert_eq!(s.limit, limit);
            }
            other => prop_assert!(false, "unexpected {:?}", other),
        }
    }

    /// Filters through the executor always return a subset of rows, and
    /// the predicate holds on every returned row.
    #[test]
    fn filter_soundness(
        vals in proptest::collection::vec(-100i64..100, 0..60),
        threshold in -100i64..100,
    ) {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let mut b = TableBuilder::new(schema);
        for &v in &vals {
            b.push_row(vec![v.into()]).unwrap();
        }
        let t = b.finish();
        let stmt = match parse(&format!("SELECT x FROM t WHERE x > {threshold}"))
            .unwrap().pop().unwrap()
        {
            Statement::Select(s) => s,
            _ => unreachable!(),
        };
        let out = run_select(&stmt, &t, None).unwrap();
        let expect = vals.iter().filter(|&&v| v > threshold).count();
        prop_assert_eq!(out.num_rows(), expect);
        for r in 0..out.num_rows() {
            prop_assert!(out.value(r, 0).as_i64().unwrap() > threshold);
        }
    }
}
