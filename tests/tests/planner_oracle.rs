//! Property-based equivalence, four ways: the vectorized physical-plan
//! executor — serial (`parallelism = 1`) *and* parallel (thread counts
//! {2, 8}), with the logical optimizer **off and on** — must produce
//! results identical to the retained row-at-a-time reference
//! (`run_select_rowwise`): same schema, same values bit-for-bit, and
//! the same errors — across generated tables (with NULLs), expressions,
//! and weight vectors. This is the safety net under every later
//! executor optimization; it pins the morsel driver's invariant that
//! the thread count never changes results *and* the optimizer's
//! invariant that plan rewriting (projection pruning, constant folding,
//! Sort+Limit → TopK fusion) never changes results either.

use mosaic_core::{run_select_partitioned, run_select_rowwise, run_select_with};
use mosaic_sql::{parse, Statement};
use mosaic_storage::{DataType, Field, Schema, Table, TableBuilder, Value};
use proptest::prelude::*;

type Row = (Option<u8>, Option<i64>, Option<f64>);

/// Mixed-type table with NULLs in every column: `k` (string from a small
/// alphabet), `i` (int), `f` (float).
fn build_table(rows: &[Row]) -> Table {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Str),
        Field::new("i", DataType::Int),
        Field::new("f", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for (k, i, f) in rows {
        b.push_row(vec![
            k.map_or(Value::Null, |k| Value::Str(format!("v{}", k % 3))),
            i.map_or(Value::Null, Value::Int),
            f.map_or(Value::Null, Value::Float),
        ])
        .unwrap();
    }
    b.finish()
}

fn select(src: &str) -> mosaic_sql::SelectStmt {
    match parse(src).unwrap().pop().unwrap() {
        Statement::Select(s) => s,
        other => panic!("not a select: {other:?}"),
    }
}

/// Exact table equality: schema (names and types) plus `Value` equality
/// per cell (floats compare by bit pattern via `Value::PartialEq`).
fn tables_identical(a: &Table, b: &Table) -> std::result::Result<(), String> {
    if a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns() {
        return Err(format!(
            "shape {}x{} vs {}x{}",
            a.num_rows(),
            a.num_columns(),
            b.num_rows(),
            b.num_columns()
        ));
    }
    for c in 0..a.num_columns() {
        let (fa, fb) = (a.schema().field(c), b.schema().field(c));
        if fa.name != fb.name || fa.data_type != fb.data_type {
            return Err(format!(
                "field {c}: {} {} vs {} {}",
                fa.name, fa.data_type, fb.name, fb.data_type
            ));
        }
    }
    for r in 0..a.num_rows() {
        for c in 0..a.num_columns() {
            if a.value(r, c) != b.value(r, c) {
                return Err(format!(
                    "cell ({r},{c}): {:?} vs {:?}",
                    a.value(r, c),
                    b.value(r, c)
                ));
            }
        }
    }
    Ok(())
}

/// Thread counts every query is checked at: serial, a partial pool, and
/// an oversubscribed pool.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Run a query through the row-wise reference and the vectorized
/// executor — optimizer off and on — at every thread count, and demand
/// identical outcomes everywhere.
fn assert_equivalent(src: &str, table: &Table, weights: Option<&[f64]>) {
    let stmt = select(src);
    let rowwise = run_select_rowwise(&stmt, table, weights);
    for threads in THREAD_COUNTS {
        for optimizer in [false, true] {
            let vectorized = run_select_with(&stmt, table, weights, threads, optimizer);
            match (vectorized, &rowwise) {
                (Ok(v), Ok(r)) => {
                    if let Err(msg) = tables_identical(&v, r) {
                        panic!(
                            "divergence on {src:?} at {threads} thread(s), optimizer={optimizer}: {msg}\nvectorized:\n{v}\nrowwise:\n{r}"
                        );
                    }
                }
                (Err(v), Err(r)) => {
                    assert_eq!(
                        v.to_string(),
                        r.to_string(),
                        "error mismatch on {src:?} at {threads} thread(s), optimizer={optimizer}"
                    );
                }
                (v, r) => panic!(
                    "one path failed on {src:?} at {threads} thread(s), optimizer={optimizer}: vectorized {:?}, rowwise {:?}",
                    v.map(|t| t.num_rows()),
                    r.as_ref().map(|t| t.num_rows())
                ),
            }
        }
    }
}

/// Query templates exercised against every generated table. `{thr}` is
/// substituted with a generated threshold.
const QUERIES: &[&str] = &[
    "SELECT * FROM t",
    "SELECT k, i FROM t WHERE i > {thr}",
    "SELECT i + f, i * 2, f / 2 FROM t",
    "SELECT i / 0, i % 3, -i, -f FROM t",
    "SELECT 2 + i, 2 * i, 2 - i, 7 % i, {thr} - i FROM t",
    "SELECT i FROM t WHERE i % 7 = 0",
    "SELECT k FROM t WHERE i IS NULL OR f IS NULL",
    "SELECT k FROM t WHERE k IN ('v0', 'v1') ORDER BY i DESC LIMIT 5",
    "SELECT i FROM t WHERE i BETWEEN -10 AND {thr} ORDER BY i",
    "SELECT f FROM t WHERE f * 2.0 > 10.0 AND i <= {thr}",
    "SELECT k FROM t WHERE NOT i = {thr} AND k IS NOT NULL",
    "SELECT i FROM t WHERE i IN (1, 2, NULL)",
    "SELECT i FROM t WHERE i NOT IN (3, {thr})",
    "SELECT k, i, f FROM t ORDER BY k, i DESC, f LIMIT 7",
    "SELECT i > {thr}, f IS NULL, k = 'v1' FROM t",
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(f), COUNT(i) FROM t",
    "SELECT SUM(i), AVG(f), MIN(i), MAX(f) FROM t",
    "SELECT MIN(k), MAX(k) FROM t",
    "SELECT SUM(i) / COUNT(*) FROM t",
    "SELECT SUM(i + f), AVG(i * 2) FROM t",
    "SELECT COUNT(*) FROM t WHERE f > 0.0 OR i < 0",
    "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k",
    "SELECT k, SUM(i) AS s FROM t GROUP BY k ORDER BY s DESC, k LIMIT 3",
    "SELECT k, AVG(f) AS a, MIN(i), MAX(i) FROM t GROUP BY k ORDER BY k",
    "SELECT k, COUNT(i) AS c FROM t WHERE f IS NOT NULL GROUP BY k ORDER BY c DESC, k",
    "SELECT i, COUNT(*) FROM t GROUP BY i ORDER BY i LIMIT 10",
    "SELECT f, COUNT(*) FROM t GROUP BY f ORDER BY f LIMIT 10",
    "SELECT k, i, COUNT(*) FROM t GROUP BY k, i ORDER BY k, i",
    "SELECT k, SUM(i) + AVG(f) AS m FROM t WHERE i > {thr} GROUP BY k ORDER BY k",
    // Sorting an aggregate result by a non-projected source column must
    // error identically in both executors (no silent input fallback).
    "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY i",
];

/// Multi-morsel bit-identity: on a table spanning several morsels, every
/// template (weighted and unweighted) must produce the exact same table
/// at thread counts {1, 2, 8} — the morsel driver's core invariant,
/// beyond the reach of the small proptest tables.
#[test]
fn multi_morsel_thread_counts_agree() {
    let rows = 2 * mosaic_core::MORSEL_ROWS + 777;
    let table = build_table(
        &(0..rows)
            .map(|r| {
                (
                    (r % 5 != 0).then_some((r % 3) as u8),
                    (r % 11 != 0).then_some((r % 83) as i64 - 40),
                    (r % 13 != 0).then_some((r % 59) as f64 * 0.75 - 22.0),
                )
            })
            .collect::<Vec<Row>>(),
    );
    let weights: Vec<f64> = (0..rows).map(|r| 0.1 + (r % 17) as f64 * 0.4).collect();
    for template in QUERIES {
        let src = template.replace("{thr}", "7");
        let stmt = select(&src);
        for weights in [None, Some(weights.as_slice())] {
            // Baseline: serial, unoptimized. Every (thread count,
            // optimizer) combination must reproduce it exactly.
            let baseline = run_select_with(&stmt, &table, weights, 1, false);
            for threads in [1, 2, 8] {
                for optimizer in [false, true] {
                    if threads == 1 && !optimizer {
                        continue; // that is the baseline itself
                    }
                    let out = run_select_with(&stmt, &table, weights, threads, optimizer);
                    match (&baseline, &out) {
                        (Ok(b), Ok(o)) => {
                            if let Err(msg) = tables_identical(b, o) {
                                panic!(
                                    "divergence on {src:?} at {threads} threads, optimizer={optimizer}: {msg}"
                                );
                            }
                        }
                        (Err(b), Err(o)) => {
                            assert_eq!(
                                b.to_string(),
                                o.to_string(),
                                "error mismatch on {src:?}, optimizer={optimizer}"
                            )
                        }
                        _ => panic!(
                            "ok/err divergence on {src:?} at {threads} threads, optimizer={optimizer}"
                        ),
                    }
                }
            }
        }
    }
}

/// High-cardinality string GROUP BY: thousands of distinct groups over
/// a multi-morsel table — the radix-partitioned aggregate merge must be
/// bit-identical to the serial merge at every (thread count, partition
/// count, optimizer) combination, and match the row-wise reference.
#[test]
fn high_cardinality_string_group_by_agrees() {
    let rows = 2 * mosaic_core::MORSEL_ROWS + 777;
    let schema = Schema::new(vec![
        Field::new("k", DataType::Str),
        Field::new("i", DataType::Int),
        Field::new("f", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for r in 0..rows {
        b.push_row(vec![
            if r % 97 == 0 {
                Value::Null
            } else {
                Value::Str(format!("g{}", r % 4500)) // ≥ 4K distinct groups
            },
            if r % 11 != 0 {
                Value::Int((r % 83) as i64 - 40)
            } else {
                Value::Null
            },
            if r % 13 != 0 {
                Value::Float((r % 59) as f64 * 0.75 - 22.0)
            } else {
                Value::Null
            },
        ])
        .unwrap();
    }
    let table = b.finish().dict_encoded();
    let weights: Vec<f64> = (0..rows).map(|r| 0.1 + (r % 17) as f64 * 0.4).collect();
    let templates = [
        "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k",
        "SELECT k, SUM(i) AS s, AVG(f) AS a, MIN(i), MAX(f) FROM t GROUP BY k ORDER BY k LIMIT 50",
        "SELECT k, COUNT(i) AS c FROM t WHERE f > 0.0 GROUP BY k ORDER BY c DESC, k LIMIT 20",
        "SELECT k, SUM(i) + AVG(f) AS m FROM t GROUP BY k ORDER BY m DESC, k LIMIT 10",
    ];
    for src in templates {
        let stmt = select(src);
        for weights in [None, Some(weights.as_slice())] {
            // Baseline: serial merge on one thread, optimizer off. Every
            // (thread count, partition count, optimizer) combination
            // must reproduce it bit-for-bit. (The row-wise reference
            // folds weighted float sums in row order rather than morsel
            // order, so — as in `multi_morsel_thread_counts_agree` —
            // the serial vectorized run is the bit-identity anchor.)
            let baseline = run_select_partitioned(&stmt, &table, weights, 1, false, 1).unwrap();
            for threads in THREAD_COUNTS {
                for partitions in [1, 16] {
                    for optimizer in [false, true] {
                        let out = run_select_partitioned(
                            &stmt, &table, weights, threads, optimizer, partitions,
                        )
                        .unwrap();
                        if let Err(msg) = tables_identical(&out, &baseline) {
                            panic!(
                                "high-cardinality divergence on {src:?} at {threads} thread(s), \
                                 {partitions} partition(s), optimizer={optimizer}: {msg}"
                            );
                        }
                    }
                }
            }
            // Semantic anchor: the unweighted COUNT template is exact
            // integer arithmetic, so it must also match the row-wise
            // reference (not just be internally consistent).
            if weights.is_none() && src.contains("COUNT(*) FROM t GROUP BY k ORDER BY k") {
                let reference = run_select_rowwise(&stmt, &table, None).unwrap();
                tables_identical(&baseline, &reference).unwrap();
            }
        }
    }
}

/// Dictionary-vs-plain equivalence: the same logical table stored with
/// plain per-row strings and with dictionary-encoded string columns
/// must produce bit-identical results through every query template at
/// every thread count. The encoding is a physical property only.
#[test]
fn dict_and_plain_representations_agree() {
    let rows = mosaic_core::MORSEL_ROWS + 333;
    let plain = build_table(
        &(0..rows)
            .map(|r| {
                (
                    (r % 5 != 0).then_some((r % 3) as u8),
                    (r % 11 != 0).then_some((r % 83) as i64 - 40),
                    (r % 13 != 0).then_some((r % 59) as f64 * 0.75 - 22.0),
                )
            })
            .collect::<Vec<Row>>(),
    );
    assert!(!plain.column(0).is_dict(), "TableBuilder builds plain Str");
    let dict = plain.dict_encoded();
    assert!(dict.column(0).is_dict(), "dict_encoded builds Dict");
    for template in QUERIES {
        let src = template.replace("{thr}", "7");
        let stmt = select(&src);
        for threads in THREAD_COUNTS {
            let p = run_select_with(&stmt, &plain, None, threads, true);
            let d = run_select_with(&stmt, &dict, None, threads, true);
            match (p, d) {
                (Ok(p), Ok(d)) => {
                    if let Err(msg) = tables_identical(&p, &d) {
                        panic!("dict/plain divergence on {src:?} at {threads} thread(s): {msg}");
                    }
                }
                (Err(p), Err(d)) => assert_eq!(p.to_string(), d.to_string()),
                _ => panic!("ok/err divergence on {src:?} at {threads} thread(s)"),
            }
        }
    }
}

// ---- the join oracle ----
//
// INNER and LEFT OUTER equi-joins run through the same four-way
// oracle: the row-wise reference is `mosaic_core::reference_join_kinded`
// (canonical nested loop, NULL-extending unmatched left rows for LEFT
// OUTER, combining per-side weights for weighted×weighted joins)
// followed by `run_select_rowwise` over the joined table, and the
// engine's hash-join path must reproduce it bit-for-bit at optimizer
// {off, on} × threads {1, 2, 8}.

use mosaic_core::{reference_join, reference_join_kinded, JoinKind, MosaicEngine};
use std::sync::Arc;

/// Fact table: string key `k` (with NULLs and values the dimension
/// lacks), int key `num`, float key `fkey` (with NULLs), and data
/// columns `dist` / `dur`.
fn fact_table(rows: usize) -> Table {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Str),
        Field::new("num", DataType::Int),
        Field::new("fkey", DataType::Float),
        Field::new("dist", DataType::Int),
        Field::new("dur", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for r in 0..rows {
        b.push_row(vec![
            if r % 9 == 0 {
                Value::Null // NULL join keys must never match
            } else {
                Value::Str(format!("v{}", r % 5)) // v3/v4 miss the dim side
            },
            Value::Int((r % 7) as i64),
            if r % 11 == 0 {
                Value::Null
            } else {
                Value::Float((r % 4) as f64 + 0.5)
            },
            Value::Int((r % 83) as i64 - 40),
            if r % 13 == 0 {
                Value::Null
            } else {
                Value::Float((r % 59) as f64 * 0.75 - 22.0)
            },
        ])
        .unwrap();
    }
    b.finish()
}

/// Dimension table: string key `code` (with a NULL and a code the fact
/// side never produces), int key `ncode`, float key `fcode`, plus
/// `grp` / `boost` payloads. Some codes repeat, so one probe row can
/// match several build rows.
fn dim_table() -> Table {
    let schema = Schema::new(vec![
        Field::new("code", DataType::Str),
        Field::new("ncode", DataType::Int),
        Field::new("fcode", DataType::Float),
        Field::new("grp", DataType::Str),
        Field::new("boost", DataType::Int),
    ]);
    let mut b = TableBuilder::new(schema);
    for (code, ncode, fcode, grp, boost) in [
        (Value::Str("v0".into()), 1, 0.5, "g1", 10),
        (Value::Str("v1".into()), 2, 1.5, "g1", 20),
        (Value::Str("v2".into()), 3, 2.5, "g2", 30),
        (Value::Str("v1".into()), 4, 1.5, "g2", 40), // duplicate keys
        (Value::Null, 5, 3.5, "g3", 50),             // NULL key: never matches
        (Value::Str("zz".into()), 99, 9.5, "g3", 60), // unmatched code
    ] {
        b.push_row(vec![
            code,
            Value::Int(ncode),
            Value::Float(fcode),
            Value::Str(grp.into()),
            Value::Int(boost),
        ])
        .unwrap();
    }
    b.finish()
}

/// A join template: the join SQL the engine runs, the equivalent
/// single-table SQL over the reference-joined table, and the equi-join
/// keys (in each side's own column names) for `reference_join`.
const JOIN_TEMPLATES: &[(&str, &str, (&str, &str))] = &[
    (
        "SELECT * FROM fact f JOIN dim c ON f.k = c.code",
        "SELECT * FROM j",
        ("k", "code"),
    ),
    (
        "SELECT c.grp AS grp, COUNT(*) AS n, SUM(f.dist) AS s, AVG(f.dur) AS a \
         FROM fact f JOIN dim c ON f.k = c.code GROUP BY c.grp ORDER BY grp",
        "SELECT grp, COUNT(*) AS n, SUM(dist) AS s, AVG(dur) AS a \
         FROM j GROUP BY grp ORDER BY grp",
        ("k", "code"),
    ),
    // Pushdown into both sides plus ORDER/LIMIT above the join.
    (
        "SELECT f.dist AS dist, c.boost AS boost FROM fact f JOIN dim c ON f.k = c.code \
         WHERE f.dist > {thr} AND c.grp = 'g1' ORDER BY dist, boost LIMIT 7",
        "SELECT dist, boost FROM j WHERE dist > {thr} AND grp = 'g1' \
         ORDER BY dist, boost LIMIT 7",
        ("k", "code"),
    ),
    // A cross-side conjunct stays above the join (not pushable).
    (
        "SELECT COUNT(*) AS n FROM fact f JOIN dim c ON f.k = c.code \
         WHERE f.dist + c.boost > {thr}",
        "SELECT COUNT(*) AS n FROM j WHERE dist + boost > {thr}",
        ("k", "code"),
    ),
    // Expression keys over int columns.
    (
        "SELECT c.grp AS grp, COUNT(*) AS n FROM fact f JOIN dim c ON f.num + 1 = c.ncode \
         GROUP BY c.grp ORDER BY grp",
        "SELECT grp, COUNT(*) AS n FROM j GROUP BY grp ORDER BY grp",
        ("num + 1", "ncode"),
    ),
    // Float keys (NULLs on the fact side never match).
    (
        "SELECT c.boost AS boost, COUNT(*) AS n FROM fact f JOIN dim c ON f.fkey = c.fcode \
         GROUP BY c.boost ORDER BY boost",
        "SELECT boost, COUNT(*) AS n FROM j GROUP BY boost ORDER BY boost",
        ("fkey", "fcode"),
    ),
    // Empty build side: the pushed dimension filter matches nothing.
    (
        "SELECT f.dist AS dist, c.grp AS grp FROM fact f JOIN dim c ON f.k = c.code \
         WHERE c.grp = 'nope'",
        "SELECT dist, grp FROM j WHERE grp = 'nope'",
        ("k", "code"),
    ),
    // Empty probe side: the pushed fact filter matches nothing.
    (
        "SELECT COUNT(*) AS n FROM fact f JOIN dim c ON f.k = c.code WHERE f.dist > 99999",
        "SELECT COUNT(*) AS n FROM j WHERE dist > 99999",
        ("k", "code"),
    ),
    // LEFT OUTER wildcard: unmatched fact rows (v3/v4 codes and NULL
    // keys) survive with the dimension side NULL-extended.
    (
        "SELECT * FROM fact f LEFT JOIN dim c ON f.k = c.code",
        "SELECT * FROM j",
        ("k", "code"),
    ),
    // LEFT OUTER aggregate: the NULL-extended rows form a NULL group,
    // and COUNT(col) skips NULL-extended payloads while COUNT(*) keeps
    // the rows.
    (
        "SELECT c.grp AS grp, COUNT(*) AS n, COUNT(c.boost) AS nb \
         FROM fact f LEFT JOIN dim c ON f.k = c.code GROUP BY c.grp ORDER BY grp",
        "SELECT grp, COUNT(*) AS n, COUNT(boost) AS nb FROM j GROUP BY grp ORDER BY grp",
        ("k", "code"),
    ),
    // LEFT OUTER anti-join idiom: the right-side IS NULL predicate must
    // stay ABOVE the join (pushing it below would change results).
    (
        "SELECT f.dist AS dist FROM fact f LEFT JOIN dim c ON f.k = c.code \
         WHERE c.boost IS NULL ORDER BY dist LIMIT 9",
        "SELECT dist FROM j WHERE boost IS NULL ORDER BY dist LIMIT 9",
        ("k", "code"),
    ),
    // LEFT OUTER with a pushable left-side conjunct.
    (
        "SELECT f.dist AS dist, c.grp AS grp FROM fact f LEFT JOIN dim c ON f.k = c.code \
         WHERE f.dist > {thr} ORDER BY dist, grp LIMIT 11",
        "SELECT dist, grp FROM j WHERE dist > {thr} ORDER BY dist, grp LIMIT 11",
        ("k", "code"),
    ),
    // LEFT OUTER with a right-side equality conjunct: NULL-extended
    // rows fail it, so it filters — but only above the join.
    (
        "SELECT f.dist AS dist, c.grp AS grp FROM fact f LEFT JOIN dim c ON f.k = c.code \
         WHERE c.grp = 'g1' ORDER BY dist, grp LIMIT 11",
        "SELECT dist, grp FROM j WHERE grp = 'g1' ORDER BY dist, grp LIMIT 11",
        ("k", "code"),
    ),
    // LEFT OUTER over float keys: NULL fact keys never match but still
    // appear, NULL-extended, in the NULL boost group.
    (
        "SELECT c.boost AS boost, COUNT(*) AS n FROM fact f LEFT JOIN dim c ON f.fkey = c.fcode \
         GROUP BY c.boost ORDER BY boost",
        "SELECT boost, COUNT(*) AS n FROM j GROUP BY boost ORDER BY boost",
        ("fkey", "fcode"),
    ),
    // LEFT OUTER over expression keys.
    (
        "SELECT c.grp AS grp, COUNT(*) AS n FROM fact f LEFT JOIN dim c ON f.num + 1 = c.ncode \
         GROUP BY c.grp ORDER BY grp",
        "SELECT grp, COUNT(*) AS n FROM j GROUP BY grp ORDER BY grp",
        ("num + 1", "ncode"),
    ),
    // LEFT OUTER where nothing on the right survives the residual
    // filter — the engine must not "optimize" it into an empty build.
    (
        "SELECT f.dist AS dist, c.grp AS grp FROM fact f LEFT JOIN dim c ON f.k = c.code \
         WHERE c.grp = 'nope'",
        "SELECT dist, grp FROM j WHERE grp = 'nope'",
        ("k", "code"),
    ),
];

/// The join kind a template exercises, recovered from its SQL.
fn template_kind(join_sql: &str) -> JoinKind {
    if join_sql.contains("LEFT JOIN") {
        JoinKind::LeftOuter
    } else {
        JoinKind::Inner
    }
}

fn join_keys(spec: (&str, &str)) -> Vec<(mosaic_sql::Expr, mosaic_sql::Expr)> {
    vec![(
        mosaic_sql::parse_expr(spec.0).unwrap(),
        mosaic_sql::parse_expr(spec.1).unwrap(),
    )]
}

/// Run one join template through the four-way oracle against an engine
/// holding `fact` and `dim` as auxiliary tables.
fn assert_join_equivalent(engine: &Arc<MosaicEngine>, fact: &Table, dim: &Table, thr: i64) {
    for (join_sql, ref_sql, keys) in JOIN_TEMPLATES {
        let kind = template_kind(join_sql);
        let join_sql = join_sql.replace("{thr}", &thr.to_string());
        let ref_sql = ref_sql.replace("{thr}", &thr.to_string());
        let joined =
            reference_join_kinded(fact, "f", dim, "c", &join_keys(*keys), kind, &[]).unwrap();
        let reference = run_select_rowwise(&select(&ref_sql), &joined, None).unwrap();
        for threads in THREAD_COUNTS {
            for optimizer in [false, true] {
                let session = engine
                    .session()
                    .with_parallelism(threads)
                    .with_optimizer(optimizer);
                let out = session.query(&join_sql).unwrap_or_else(|e| {
                    panic!("{join_sql:?} failed (threads {threads}, optimizer {optimizer}): {e}")
                });
                if let Err(msg) = tables_identical(&out, &reference) {
                    panic!(
                        "join divergence on {join_sql:?} at {threads} thread(s), \
                         optimizer={optimizer}: {msg}\nhash join:\n{out}\nreference:\n{reference}"
                    );
                }
            }
        }
    }
}

/// The join oracle on a small fact table (both build-side choices get
/// exercised: the dimension is smaller, so it builds; the wildcard
/// template's reference covers full-width output).
#[test]
fn join_templates_match_reference() {
    let fact = fact_table(257);
    let dim = dim_table();
    let engine = Arc::new(MosaicEngine::new());
    engine.register_table("fact", fact.clone()).unwrap();
    engine.register_table("dim", dim.clone()).unwrap();
    for thr in [-40, 0, 17] {
        assert_join_equivalent(&engine, &fact, &dim, thr);
    }
}

/// Build-side flip: when the left side is smaller, the executor builds
/// on it and probes the right side — the canonical (left, right) output
/// order must survive the flip.
#[test]
fn join_smaller_left_builds_and_order_survives() {
    let fact = fact_table(4); // smaller than dim (6 rows)
    let dim = dim_table();
    let engine = Arc::new(MosaicEngine::new());
    engine.register_table("fact", fact.clone()).unwrap();
    engine.register_table("dim", dim.clone()).unwrap();
    assert_join_equivalent(&engine, &fact, &dim, 0);
}

/// Degenerate inputs: an empty fact (probe) side, and an empty
/// dimension (build) side — every template, both join kinds, must
/// agree with the reference (LEFT OUTER against an empty dimension
/// NULL-extends every fact row; INNER returns nothing).
#[test]
fn join_empty_sides_match_reference() {
    let dim = dim_table();
    let empty_dim = {
        let schema = std::sync::Arc::clone(dim.schema());
        TableBuilder::new(schema).finish()
    };
    for (fact, dim) in [
        (fact_table(0), dim.clone()), // empty probe
        (fact_table(31), empty_dim),  // empty build
        (fact_table(0), dim_table()), // re-check with fresh dim
    ] {
        let engine = Arc::new(MosaicEngine::new());
        engine.register_table("fact", fact.clone()).unwrap();
        engine.register_table("dim", dim.clone()).unwrap();
        assert_join_equivalent(&engine, &fact, &dim, 0);
    }
}

/// Weighted×weighted joins through the four-way oracle: both sides are
/// samples, so the engine exposes per-side weights and the join emits
/// one combined `weight` column (the product; NULL when the right side
/// is NULL-extended). The reference builds the same weight-augmented
/// tables and uses `reference_join_kinded` with both sides weighted.
#[test]
fn weighted_join_templates_match_reference() {
    let engine = Arc::new(MosaicEngine::new());
    engine
        .session()
        .execute(
            "CREATE GLOBAL POPULATION PopW (k TEXT, x INT);
             CREATE SAMPLE WA AS (SELECT * FROM PopW);
             CREATE SAMPLE WB AS (SELECT * FROM PopW);
             INSERT INTO WA VALUES ('a', 1), ('a', 2), ('b', 3), ('c', 4);
             INSERT INTO WB VALUES ('a', 10), ('b', 20), ('b', 30), ('d', 40);",
        )
        .unwrap();
    // Mirror the engine's sample scan: data columns plus a `weight`
    // column (fresh samples carry weight 1.0 per row).
    let sample_with_weights = |rows: &[(&str, i64)]| {
        let schema = Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("x", DataType::Int),
            Field::new("weight", DataType::Float),
        ]);
        let mut b = TableBuilder::new(schema);
        for (k, x) in rows {
            b.push_row(vec![
                Value::Str((*k).into()),
                Value::Int(*x),
                Value::Float(1.0),
            ])
            .unwrap();
        }
        b.finish()
    };
    let wa = sample_with_weights(&[("a", 1), ("a", 2), ("b", 3), ("c", 4)]);
    let wb = sample_with_weights(&[("a", 10), ("b", 20), ("b", 30), ("d", 40)]);
    let templates: &[(&str, &str)] = &[
        (
            "SELECT * FROM WA a JOIN WB b ON a.k = b.k",
            "SELECT * FROM j",
        ),
        (
            "SELECT * FROM WA a LEFT JOIN WB b ON a.k = b.k",
            "SELECT * FROM j",
        ),
        (
            "SELECT SUM(weight) AS s, COUNT(*) AS n FROM WA a JOIN WB b ON a.k = b.k",
            "SELECT SUM(weight) AS s, COUNT(*) AS n FROM j",
        ),
        (
            "SELECT SUM(weight) AS s, COUNT(weight) AS nw, COUNT(*) AS n \
             FROM WA a LEFT JOIN WB b ON a.k = b.k",
            "SELECT SUM(weight) AS s, COUNT(weight) AS nw, COUNT(*) AS n FROM j",
        ),
    ];
    for (join_sql, ref_sql) in templates {
        let kind = template_kind(join_sql);
        let joined =
            reference_join_kinded(&wa, "a", &wb, "b", &join_keys(("k", "k")), kind, &[0, 1])
                .unwrap();
        let reference = run_select_rowwise(&select(ref_sql), &joined, None).unwrap();
        for threads in THREAD_COUNTS {
            for optimizer in [false, true] {
                let out = engine
                    .session()
                    .with_parallelism(threads)
                    .with_optimizer(optimizer)
                    .query(join_sql)
                    .unwrap_or_else(|e| {
                        panic!(
                            "{join_sql:?} failed (threads {threads}, optimizer {optimizer}): {e}"
                        )
                    });
                if let Err(msg) = tables_identical(&out, &reference) {
                    panic!(
                        "weighted join divergence on {join_sql:?} at {threads} thread(s), \
                         optimizer={optimizer}: {msg}\nhash join:\n{out}\nreference:\n{reference}"
                    );
                }
            }
        }
    }
}

/// Multi-morsel probe determinism: a fact table spanning several
/// morsels joined against a small dimension must produce the same table
/// at every thread count, optimizer on and off — and match the
/// row-wise reference.
#[test]
fn join_multi_morsel_probe_is_deterministic() {
    let rows = 2 * mosaic_core::MORSEL_ROWS + 777;
    let fact = fact_table(rows);
    let dim = dim_table();
    let engine = Arc::new(MosaicEngine::new());
    engine.register_table("fact", fact.clone()).unwrap();
    engine.register_table("dim", dim.clone()).unwrap();
    let sql = "SELECT c.grp AS grp, COUNT(*) AS n, SUM(f.dist) AS s \
               FROM fact f JOIN dim c ON f.k = c.code GROUP BY c.grp ORDER BY grp";
    let joined = reference_join(&fact, "f", &dim, "c", &join_keys(("k", "code"))).unwrap();
    let reference = run_select_rowwise(
        &select("SELECT grp, COUNT(*) AS n, SUM(dist) AS s FROM j GROUP BY grp ORDER BY grp"),
        &joined,
        None,
    )
    .unwrap();
    for threads in THREAD_COUNTS {
        for optimizer in [false, true] {
            let out = engine
                .session()
                .with_parallelism(threads)
                .with_optimizer(optimizer)
                .query(sql)
                .unwrap();
            if let Err(msg) = tables_identical(&out, &reference) {
                panic!("multi-morsel join divergence at {threads} threads, optimizer={optimizer}: {msg}");
            }
        }
    }
}

/// ORDER BY over a multi-morsel join: the parallel sort (run split +
/// k-way merge) composed with the morsel-parallel probe and the
/// partitioned build must stay bit-identical to the row-wise reference
/// at every thread count × partition count, optimizer off and on —
/// INNER and LEFT OUTER.
#[test]
fn order_by_over_join_multi_morsel_matches_reference() {
    let rows = 2 * mosaic_core::MORSEL_ROWS + 777;
    let fact = fact_table(rows);
    let dim = dim_table();
    let engine = Arc::new(MosaicEngine::new());
    engine.register_table("fact", fact.clone()).unwrap();
    engine.register_table("dim", dim.clone()).unwrap();
    let templates: &[(&str, &str)] = &[
        // Full sorts (no LIMIT, so sort_limit_fusion cannot reduce them
        // to TopK) over the joined rows.
        (
            "SELECT f.dist AS dist, c.boost AS boost FROM fact f JOIN dim c ON f.k = c.code \
             WHERE f.dist > 30 ORDER BY dist DESC, boost",
            "SELECT dist, boost FROM j WHERE dist > 30 ORDER BY dist DESC, boost",
        ),
        (
            "SELECT f.dist AS dist, c.grp AS grp FROM fact f LEFT JOIN dim c ON f.k = c.code \
             WHERE f.dist > 35 ORDER BY grp DESC, dist",
            "SELECT dist, grp FROM j WHERE dist > 35 ORDER BY grp DESC, dist",
        ),
        // Aggregate above the join with a full ORDER BY on the groups.
        (
            "SELECT c.grp AS grp, COUNT(*) AS n, SUM(f.dist) AS s \
             FROM fact f JOIN dim c ON f.k = c.code GROUP BY c.grp ORDER BY s DESC, grp",
            "SELECT grp, COUNT(*) AS n, SUM(dist) AS s FROM j GROUP BY grp ORDER BY s DESC, grp",
        ),
    ];
    for (join_sql, ref_sql) in templates {
        let kind = template_kind(join_sql);
        let joined =
            reference_join_kinded(&fact, "f", &dim, "c", &join_keys(("k", "code")), kind, &[])
                .unwrap();
        let reference = run_select_rowwise(&select(ref_sql), &joined, None).unwrap();
        for threads in THREAD_COUNTS {
            for partitions in [1usize, 16] {
                for optimizer in [false, true] {
                    let out = engine
                        .session()
                        .with_parallelism(threads)
                        .with_agg_partitions(partitions)
                        .with_optimizer(optimizer)
                        .query(join_sql)
                        .unwrap();
                    if let Err(msg) = tables_identical(&out, &reference) {
                        panic!(
                            "ORDER BY-over-join divergence on {join_sql:?} at {threads} \
                             thread(s), {partitions} partition(s), optimizer={optimizer}: {msg}"
                        );
                    }
                }
            }
        }
    }
}

/// Partitioned-build determinism at scale: a multi-morsel build side
/// (so the radix-partitioned parallel build actually engages) probed by
/// a larger fact table must return the same bits at every thread count
/// × partition count as the serial single-partition baseline. The
/// nested-loop reference is unaffordable at this size, so the t1/p1
/// optimizer-off engine run is the oracle (its agreement with the
/// reference is pinned by the smaller join suites).
#[test]
fn partitioned_join_build_is_deterministic() {
    let dim_rows = mosaic_core::MORSEL_ROWS + 333;
    let fact_rows = 2 * mosaic_core::MORSEL_ROWS + 777;
    let dim_schema = Schema::new(vec![
        Field::new("key", DataType::Str),
        Field::new("p", DataType::Int),
    ]);
    let mut b = TableBuilder::new(dim_schema);
    for j in 0..dim_rows {
        b.push_row(vec![
            if j % 101 == 0 {
                Value::Null // NULL build keys: hashed nowhere, match nothing
            } else {
                Value::Str(format!("w{j}"))
            },
            Value::Int((j % 53) as i64),
        ])
        .unwrap();
    }
    let bigdim = b.finish();
    let fact_schema = Schema::new(vec![
        Field::new("key", DataType::Str),
        Field::new("v", DataType::Int),
    ]);
    let mut b = TableBuilder::new(fact_schema);
    for r in 0..fact_rows {
        b.push_row(vec![
            Value::Str(format!("w{}", r % dim_rows)),
            Value::Int((r % 997) as i64 - 400),
        ])
        .unwrap();
    }
    let bigfact = b.finish();
    let engine = Arc::new(MosaicEngine::new());
    engine.register_table("bigdim", bigdim).unwrap();
    engine.register_table("bigfact", bigfact).unwrap();
    let templates: &[&str] = &[
        // Build = bigdim (smaller, > 1 morsel) → partitioned build.
        "SELECT f.v AS v, d.p AS p FROM bigfact f JOIN bigdim d ON f.key = d.key \
         WHERE f.v > 540 ORDER BY v DESC, p",
        "SELECT d.p AS p, COUNT(*) AS n, SUM(f.v) AS s \
         FROM bigfact f LEFT JOIN bigdim d ON f.key = d.key GROUP BY d.p ORDER BY p",
    ];
    for sql in templates {
        let baseline = engine
            .session()
            .with_parallelism(1)
            .with_agg_partitions(1)
            .with_optimizer(false)
            .query(sql)
            .unwrap();
        assert!(baseline.num_rows() > 0, "workload must produce rows: {sql}");
        for threads in THREAD_COUNTS {
            for partitions in [1usize, 16] {
                for optimizer in [false, true] {
                    let out = engine
                        .session()
                        .with_parallelism(threads)
                        .with_agg_partitions(partitions)
                        .with_optimizer(optimizer)
                        .query(sql)
                        .unwrap();
                    if let Err(msg) = tables_identical(&out, &baseline) {
                        panic!(
                            "partitioned build divergence on {sql:?} at {threads} thread(s), \
                             {partitions} partition(s), optimizer={optimizer}: {msg}"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unweighted equivalence over every template.
    #[test]
    fn vectorized_matches_rowwise(
        rows in proptest::collection::vec(
            (
                proptest::option::of(0u8..3),
                proptest::option::of(-40i64..40),
                proptest::option::of(-25.0f64..25.0),
            ),
            0..50,
        ),
        thr in -40i64..40,
    ) {
        let table = build_table(&rows);
        for template in QUERIES {
            let src = template.replace("{thr}", &thr.to_string());
            assert_equivalent(&src, &table, None);
        }
    }

    /// Weighted equivalence: the §5.3 weighted-aggregate rewrite must be
    /// a plan property, not a behavioural fork.
    #[test]
    fn weighted_vectorized_matches_rowwise(
        rows in proptest::collection::vec(
            (
                proptest::option::of(0u8..3),
                proptest::option::of(-40i64..40),
                proptest::option::of(-25.0f64..25.0),
            ),
            1..40,
        ),
        raw_weights in proptest::collection::vec(0.05f64..20.0, 40),
        thr in -40i64..40,
    ) {
        let table = build_table(&rows);
        let weights = &raw_weights[..rows.len()];
        for template in QUERIES {
            let src = template.replace("{thr}", &thr.to_string());
            assert_equivalent(&src, &table, Some(weights));
        }
    }

    /// Degenerate shapes: empty tables, all-NULL columns, single rows.
    #[test]
    fn degenerate_tables_match(nulls in 0u8..4, n in 0usize..3) {
        let rows: Vec<Row> = (0..n)
            .map(|_| match nulls {
                0 => (None, None, None),
                1 => (Some(1), None, Some(2.5)),
                2 => (None, Some(7), None),
                _ => (Some(0), Some(-3), Some(-0.0)),
            })
            .collect();
        let table = build_table(&rows);
        for template in QUERIES {
            let src = template.replace("{thr}", "0");
            assert_equivalent(&src, &table, None);
        }
    }
}
