//! Property-based equivalence, four ways: the vectorized physical-plan
//! executor — serial (`parallelism = 1`) *and* parallel (thread counts
//! {2, 8}), with the logical optimizer **off and on** — must produce
//! results identical to the retained row-at-a-time reference
//! (`run_select_rowwise`): same schema, same values bit-for-bit, and
//! the same errors — across generated tables (with NULLs), expressions,
//! and weight vectors. This is the safety net under every later
//! executor optimization; it pins the morsel driver's invariant that
//! the thread count never changes results *and* the optimizer's
//! invariant that plan rewriting (projection pruning, constant folding,
//! Sort+Limit → TopK fusion) never changes results either.

use mosaic_core::{run_select_rowwise, run_select_with};
use mosaic_sql::{parse, Statement};
use mosaic_storage::{DataType, Field, Schema, Table, TableBuilder, Value};
use proptest::prelude::*;

type Row = (Option<u8>, Option<i64>, Option<f64>);

/// Mixed-type table with NULLs in every column: `k` (string from a small
/// alphabet), `i` (int), `f` (float).
fn build_table(rows: &[Row]) -> Table {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Str),
        Field::new("i", DataType::Int),
        Field::new("f", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for (k, i, f) in rows {
        b.push_row(vec![
            k.map_or(Value::Null, |k| Value::Str(format!("v{}", k % 3))),
            i.map_or(Value::Null, Value::Int),
            f.map_or(Value::Null, Value::Float),
        ])
        .unwrap();
    }
    b.finish()
}

fn select(src: &str) -> mosaic_sql::SelectStmt {
    match parse(src).unwrap().pop().unwrap() {
        Statement::Select(s) => s,
        other => panic!("not a select: {other:?}"),
    }
}

/// Exact table equality: schema (names and types) plus `Value` equality
/// per cell (floats compare by bit pattern via `Value::PartialEq`).
fn tables_identical(a: &Table, b: &Table) -> std::result::Result<(), String> {
    if a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns() {
        return Err(format!(
            "shape {}x{} vs {}x{}",
            a.num_rows(),
            a.num_columns(),
            b.num_rows(),
            b.num_columns()
        ));
    }
    for c in 0..a.num_columns() {
        let (fa, fb) = (a.schema().field(c), b.schema().field(c));
        if fa.name != fb.name || fa.data_type != fb.data_type {
            return Err(format!(
                "field {c}: {} {} vs {} {}",
                fa.name, fa.data_type, fb.name, fb.data_type
            ));
        }
    }
    for r in 0..a.num_rows() {
        for c in 0..a.num_columns() {
            if a.value(r, c) != b.value(r, c) {
                return Err(format!(
                    "cell ({r},{c}): {:?} vs {:?}",
                    a.value(r, c),
                    b.value(r, c)
                ));
            }
        }
    }
    Ok(())
}

/// Thread counts every query is checked at: serial, a partial pool, and
/// an oversubscribed pool.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Run a query through the row-wise reference and the vectorized
/// executor — optimizer off and on — at every thread count, and demand
/// identical outcomes everywhere.
fn assert_equivalent(src: &str, table: &Table, weights: Option<&[f64]>) {
    let stmt = select(src);
    let rowwise = run_select_rowwise(&stmt, table, weights);
    for threads in THREAD_COUNTS {
        for optimizer in [false, true] {
            let vectorized = run_select_with(&stmt, table, weights, threads, optimizer);
            match (vectorized, &rowwise) {
                (Ok(v), Ok(r)) => {
                    if let Err(msg) = tables_identical(&v, r) {
                        panic!(
                            "divergence on {src:?} at {threads} thread(s), optimizer={optimizer}: {msg}\nvectorized:\n{v}\nrowwise:\n{r}"
                        );
                    }
                }
                (Err(v), Err(r)) => {
                    assert_eq!(
                        v.to_string(),
                        r.to_string(),
                        "error mismatch on {src:?} at {threads} thread(s), optimizer={optimizer}"
                    );
                }
                (v, r) => panic!(
                    "one path failed on {src:?} at {threads} thread(s), optimizer={optimizer}: vectorized {:?}, rowwise {:?}",
                    v.map(|t| t.num_rows()),
                    r.as_ref().map(|t| t.num_rows())
                ),
            }
        }
    }
}

/// Query templates exercised against every generated table. `{thr}` is
/// substituted with a generated threshold.
const QUERIES: &[&str] = &[
    "SELECT * FROM t",
    "SELECT k, i FROM t WHERE i > {thr}",
    "SELECT i + f, i * 2, f / 2 FROM t",
    "SELECT i / 0, i % 3, -i, -f FROM t",
    "SELECT 2 + i, 2 * i, 2 - i, 7 % i, {thr} - i FROM t",
    "SELECT i FROM t WHERE i % 7 = 0",
    "SELECT k FROM t WHERE i IS NULL OR f IS NULL",
    "SELECT k FROM t WHERE k IN ('v0', 'v1') ORDER BY i DESC LIMIT 5",
    "SELECT i FROM t WHERE i BETWEEN -10 AND {thr} ORDER BY i",
    "SELECT f FROM t WHERE f * 2.0 > 10.0 AND i <= {thr}",
    "SELECT k FROM t WHERE NOT i = {thr} AND k IS NOT NULL",
    "SELECT i FROM t WHERE i IN (1, 2, NULL)",
    "SELECT i FROM t WHERE i NOT IN (3, {thr})",
    "SELECT k, i, f FROM t ORDER BY k, i DESC, f LIMIT 7",
    "SELECT i > {thr}, f IS NULL, k = 'v1' FROM t",
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(f), COUNT(i) FROM t",
    "SELECT SUM(i), AVG(f), MIN(i), MAX(f) FROM t",
    "SELECT MIN(k), MAX(k) FROM t",
    "SELECT SUM(i) / COUNT(*) FROM t",
    "SELECT SUM(i + f), AVG(i * 2) FROM t",
    "SELECT COUNT(*) FROM t WHERE f > 0.0 OR i < 0",
    "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k",
    "SELECT k, SUM(i) AS s FROM t GROUP BY k ORDER BY s DESC, k LIMIT 3",
    "SELECT k, AVG(f) AS a, MIN(i), MAX(i) FROM t GROUP BY k ORDER BY k",
    "SELECT k, COUNT(i) AS c FROM t WHERE f IS NOT NULL GROUP BY k ORDER BY c DESC, k",
    "SELECT i, COUNT(*) FROM t GROUP BY i ORDER BY i LIMIT 10",
    "SELECT f, COUNT(*) FROM t GROUP BY f ORDER BY f LIMIT 10",
    "SELECT k, i, COUNT(*) FROM t GROUP BY k, i ORDER BY k, i",
    "SELECT k, SUM(i) + AVG(f) AS m FROM t WHERE i > {thr} GROUP BY k ORDER BY k",
    // Sorting an aggregate result by a non-projected source column must
    // error identically in both executors (no silent input fallback).
    "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY i",
];

/// Multi-morsel bit-identity: on a table spanning several morsels, every
/// template (weighted and unweighted) must produce the exact same table
/// at thread counts {1, 2, 8} — the morsel driver's core invariant,
/// beyond the reach of the small proptest tables.
#[test]
fn multi_morsel_thread_counts_agree() {
    let rows = 2 * mosaic_core::MORSEL_ROWS + 777;
    let table = build_table(
        &(0..rows)
            .map(|r| {
                (
                    (r % 5 != 0).then_some((r % 3) as u8),
                    (r % 11 != 0).then_some((r % 83) as i64 - 40),
                    (r % 13 != 0).then_some((r % 59) as f64 * 0.75 - 22.0),
                )
            })
            .collect::<Vec<Row>>(),
    );
    let weights: Vec<f64> = (0..rows).map(|r| 0.1 + (r % 17) as f64 * 0.4).collect();
    for template in QUERIES {
        let src = template.replace("{thr}", "7");
        let stmt = select(&src);
        for weights in [None, Some(weights.as_slice())] {
            // Baseline: serial, unoptimized. Every (thread count,
            // optimizer) combination must reproduce it exactly.
            let baseline = run_select_with(&stmt, &table, weights, 1, false);
            for threads in [1, 2, 8] {
                for optimizer in [false, true] {
                    if threads == 1 && !optimizer {
                        continue; // that is the baseline itself
                    }
                    let out = run_select_with(&stmt, &table, weights, threads, optimizer);
                    match (&baseline, &out) {
                        (Ok(b), Ok(o)) => {
                            if let Err(msg) = tables_identical(b, o) {
                                panic!(
                                    "divergence on {src:?} at {threads} threads, optimizer={optimizer}: {msg}"
                                );
                            }
                        }
                        (Err(b), Err(o)) => {
                            assert_eq!(
                                b.to_string(),
                                o.to_string(),
                                "error mismatch on {src:?}, optimizer={optimizer}"
                            )
                        }
                        _ => panic!(
                            "ok/err divergence on {src:?} at {threads} threads, optimizer={optimizer}"
                        ),
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Unweighted equivalence over every template.
    #[test]
    fn vectorized_matches_rowwise(
        rows in proptest::collection::vec(
            (
                proptest::option::of(0u8..3),
                proptest::option::of(-40i64..40),
                proptest::option::of(-25.0f64..25.0),
            ),
            0..50,
        ),
        thr in -40i64..40,
    ) {
        let table = build_table(&rows);
        for template in QUERIES {
            let src = template.replace("{thr}", &thr.to_string());
            assert_equivalent(&src, &table, None);
        }
    }

    /// Weighted equivalence: the §5.3 weighted-aggregate rewrite must be
    /// a plan property, not a behavioural fork.
    #[test]
    fn weighted_vectorized_matches_rowwise(
        rows in proptest::collection::vec(
            (
                proptest::option::of(0u8..3),
                proptest::option::of(-40i64..40),
                proptest::option::of(-25.0f64..25.0),
            ),
            1..40,
        ),
        raw_weights in proptest::collection::vec(0.05f64..20.0, 40),
        thr in -40i64..40,
    ) {
        let table = build_table(&rows);
        let weights = &raw_weights[..rows.len()];
        for template in QUERIES {
            let src = template.replace("{thr}", &thr.to_string());
            assert_equivalent(&src, &table, Some(weights));
        }
    }

    /// Degenerate shapes: empty tables, all-NULL columns, single rows.
    #[test]
    fn degenerate_tables_match(nulls in 0u8..4, n in 0usize..3) {
        let rows: Vec<Row> = (0..n)
            .map(|_| match nulls {
                0 => (None, None, None),
                1 => (Some(1), None, Some(2.5)),
                2 => (None, Some(7), None),
                _ => (Some(0), Some(-3), Some(-0.0)),
            })
            .collect();
        let table = build_table(&rows);
        for template in QUERIES {
            let src = template.replace("{thr}", "0");
            assert_equivalent(&src, &table, None);
        }
    }
}
