//! Parallel sort correctness. The k-way run-merge kernel
//! ([`mosaic_storage::kernels::merge_sorted_runs`]) must reproduce a
//! stable `sort_by` exactly — under NULL keys, NaN keys, heavy ties,
//! and DESC orderings — for *any* split of the input into sorted runs,
//! because the engine's parallel sort picks its run boundaries from the
//! morsel size and the thread count must never change results. An
//! engine-level sweep then pins ORDER BY output bit-identical across
//! thread counts × partition counts against the row-wise reference,
//! including a multi-morsel input that actually exercises run merging.

use std::cmp::Ordering;

use mosaic_core::{run_select_partitioned, run_select_rowwise, MORSEL_ROWS};
use mosaic_sql::{parse, Statement};
use mosaic_storage::kernels::merge_sorted_runs;
use mosaic_storage::{DataType, Field, Schema, Table, TableBuilder, Value};
use proptest::prelude::*;

fn select(src: &str) -> mosaic_sql::SelectStmt {
    match parse(src).unwrap().pop().unwrap() {
        Statement::Select(s) => s,
        other => panic!("not a select: {other:?}"),
    }
}

/// Exact table equality: schema (names and types) plus `Value` equality
/// per cell (floats compare by bit pattern via `Value::PartialEq`).
fn tables_identical(a: &Table, b: &Table) -> std::result::Result<(), String> {
    if a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns() {
        return Err(format!(
            "shape {}x{} vs {}x{}",
            a.num_rows(),
            a.num_columns(),
            b.num_rows(),
            b.num_columns()
        ));
    }
    for r in 0..a.num_rows() {
        for c in 0..a.num_columns() {
            if a.value(r, c) != b.value(r, c) {
                return Err(format!(
                    "cell ({r},{c}): {:?} vs {:?}",
                    a.value(r, c),
                    b.value(r, c)
                ));
            }
        }
    }
    Ok(())
}

/// Decode a generated tag into a sort key: NULL (`None`), NaN, signed
/// zeros, and a narrow tied range — every equivalence class the
/// engine's total order has to break ties within.
fn decode_key(tag: u8, v: i32) -> Option<f64> {
    match tag {
        0 | 1 => None,
        2 | 3 => Some(f64::NAN),
        4 => Some(-0.0),
        5 => Some(0.0),
        _ => Some(v as f64 * 0.5),
    }
}

/// A total order over optional float keys: NULLs sort last, floats by
/// `total_cmp` (NaN has a definite place), optionally reversed.
fn key_cmp(a: &Option<f64>, b: &Option<f64>, desc: bool) -> Ordering {
    let ord = match (a, b) {
        (None, None) => Ordering::Equal,
        (None, Some(_)) => Ordering::Greater,
        (Some(_), None) => Ordering::Less,
        (Some(x), Some(y)) => x.total_cmp(y),
    };
    if desc {
        ord.reverse()
    } else {
        ord
    }
}

type Row = (Option<u8>, Option<i64>, Option<f64>);

/// Mixed-type table with NULLs in every column, the planner-oracle
/// shape: `k` (string from a small alphabet), `i` (int), `f` (float).
fn build_table(rows: &[Row]) -> Table {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Str),
        Field::new("i", DataType::Int),
        Field::new("f", DataType::Float),
    ]);
    let mut b = TableBuilder::new(schema);
    for (k, i, f) in rows {
        b.push_row(vec![
            k.map_or(Value::Null, |k| Value::Str(format!("v{}", k % 3))),
            i.map_or(Value::Null, Value::Int),
            f.map_or(Value::Null, Value::Float),
        ])
        .unwrap();
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merging any consecutive-run split of the input under the strict
    /// `(key, index)` order reproduces a stable `sort_by` of the keys
    /// alone — the exact equivalence the engine's parallel sort rests
    /// on.
    #[test]
    fn merge_sorted_runs_equals_stable_sort(
        raw in proptest::collection::vec((0u8..16, -4i32..4), 0..300),
        lens in proptest::collection::vec(1usize..40, 0..12),
        desc_tag in 0u8..2,
    ) {
        let keys: Vec<Option<f64>> = raw.iter().map(|&(t, v)| decode_key(t, v)).collect();
        let desc = desc_tag == 1;
        let n = keys.len();
        let less = |a: usize, b: usize| match key_cmp(&keys[a], &keys[b], desc) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => a < b,
        };
        let strict = |a: &usize, b: &usize| {
            if less(*a, *b) {
                Ordering::Less
            } else if less(*b, *a) {
                Ordering::Greater
            } else {
                Ordering::Equal
            }
        };
        // Split 0..n into consecutive runs from the generated lengths
        // (whatever is left over becomes the final run), then sort each
        // run independently — exactly what the worker pool does.
        let mut runs: Vec<Vec<usize>> = Vec::new();
        let mut start = 0usize;
        for len in lens {
            if start >= n {
                break;
            }
            let end = (start + len).min(n);
            let mut run: Vec<usize> = (start..end).collect();
            run.sort_unstable_by(strict);
            runs.push(run);
            start = end;
        }
        if start < n {
            let mut run: Vec<usize> = (start..n).collect();
            run.sort_unstable_by(strict);
            runs.push(run);
        }
        let merged = merge_sorted_runs(&runs, less);
        let mut expect: Vec<usize> = (0..n).collect();
        expect.sort_by(|&a, &b| key_cmp(&keys[a], &keys[b], desc));
        prop_assert_eq!(merged, expect);
    }

    /// Engine-level: a multi-key ORDER BY (with NULLs, ties, and mixed
    /// ASC/DESC) is bit-identical to the row-wise reference at every
    /// thread count × partition count.
    #[test]
    fn order_by_bit_identical_across_threads(
        rows in proptest::collection::vec(
            (
                proptest::option::of(0u8..3),
                proptest::option::of(-5i64..5),
                proptest::option::of(-2.0f64..2.0),
            ),
            0..120,
        ),
        desc_f_tag in 0u8..2,
        desc_i_tag in 0u8..2,
    ) {
        let (desc_f, desc_i) = (desc_f_tag == 1, desc_i_tag == 1);
        let table = build_table(&rows);
        let src = format!(
            "SELECT k, i, f FROM t ORDER BY f{}, i{}, k",
            if desc_f { " DESC" } else { "" },
            if desc_i { " DESC" } else { "" },
        );
        let stmt = select(&src);
        let reference = run_select_rowwise(&stmt, &table, None).unwrap();
        for threads in [1usize, 2, 8] {
            for partitions in [1usize, 16] {
                for optimizer in [false, true] {
                    let got = run_select_partitioned(
                        &stmt, &table, None, threads, optimizer, partitions,
                    )
                    .unwrap();
                    if let Err(msg) = tables_identical(&got, &reference) {
                        panic!(
                            "divergence on {src:?} at {threads} thread(s), \
                             {partitions} partition(s), optimizer={optimizer}: {msg}"
                        );
                    }
                }
            }
        }
    }
}

/// A genuinely multi-morsel sort (3 runs) with heavy ties and NaN keys:
/// the parallel run-split + k-way merge must match both the serial
/// executor and the row-wise reference bit-for-bit. Proptest inputs
/// stay small, so this pins the run-merge path explicitly.
#[test]
fn multi_morsel_order_by_matches_serial_and_reference() {
    let rows = 2 * MORSEL_ROWS + 777;
    let schema = Schema::new(vec![
        Field::new("g", DataType::Str),
        Field::new("x", DataType::Float),
        Field::new("n", DataType::Int),
    ]);
    let mut b = TableBuilder::new(schema);
    for r in 0..rows {
        b.push_row(vec![
            if r % 17 == 0 {
                Value::Null
            } else {
                Value::Str(format!("s{}", r % 7))
            },
            match r % 13 {
                0 => Value::Null,
                1 => Value::Float(f64::NAN),
                _ => Value::Float(((r % 29) as f64) * 0.25 - 3.0), // heavy ties
            },
            Value::Int((r % 1000) as i64 - 300),
        ])
        .unwrap();
    }
    let table = b.finish();
    let stmt = select("SELECT g, x, n FROM t ORDER BY x DESC, g, n DESC");
    let reference = run_select_rowwise(&stmt, &table, None).unwrap();
    let serial = run_select_partitioned(&stmt, &table, None, 1, true, 1).unwrap();
    tables_identical(&serial, &reference).expect("serial executor vs row-wise reference");
    for threads in [2usize, 8] {
        for partitions in [1usize, 16] {
            let got =
                run_select_partitioned(&stmt, &table, None, threads, true, partitions).unwrap();
            tables_identical(&got, &serial).unwrap_or_else(|msg| {
                panic!(
                    "parallel sort diverged at {threads} threads, {partitions} partitions: {msg}"
                )
            });
        }
    }
}
