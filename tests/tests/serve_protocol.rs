//! Wire-protocol robustness for `mosaic-serve`. The codec must be
//! *total* — any byte string decodes to a message or a `DecodeError`,
//! never a panic — and the server must answer malformed, truncated,
//! oversized, and out-of-order frames with clean typed protocol errors
//! while never wedging the acceptor or leaking an admission permit.
//! Property tests fuzz the codec (round-trips over arbitrary values
//! including raw float bit patterns, then fully arbitrary payloads);
//! the TCP tests speak raw bytes at a live server.

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;

use mosaic_core::MosaicEngine;
use mosaic_serve::protocol::{codes, read_frame, write_frame, ROWS_PER_BATCH};
use mosaic_serve::{
    Client, Request, Response, ServeConfig, Server, ServerHandle, WireError, WireField, MAX_FRAME,
};
use mosaic_sql::Visibility;
use mosaic_storage::{DataType, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

// ---------------------------------------------------------------------
// Codec property tests (no sockets). The vendored proptest subset has
// no combinators, so the message strategies are hand-rolled `Strategy`
// impls drawing directly from the case RNG.
// ---------------------------------------------------------------------

/// Strings over a mixed alphabet: ASCII, quotes, NULs, and multi-byte
/// code points — length-prefixed UTF-8 must carry all of them.
fn arb_string(rng: &mut StdRng, max_len: usize) -> String {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', '9', ' ', '\'', '"', '_', ';', '\0', '\n', 'é', '世', '🦀',
    ];
    let len = rng.random_range(0..max_len);
    (0..len)
        .map(|_| ALPHABET[rng.random_range(0..ALPHABET.len())])
        .collect()
}

/// Arbitrary wire values, including NaN payloads, infinities, and -0.0
/// via raw bit patterns — the codec ships floats as bits, so every
/// pattern must survive.
fn arb_value(rng: &mut StdRng) -> Value {
    match rng.random_range(0u8..5) {
        0 => Value::Null,
        1 => Value::Bool(rng.random_range(0u8..2) == 1),
        2 => Value::Int(rng.random_range(i64::MIN..i64::MAX)),
        3 => Value::Float(f64::from_bits(rng.random_range(0u64..u64::MAX))),
        _ => Value::Str(arb_string(rng, 24)),
    }
}

struct ArbRequest;

impl proptest::strategy::Strategy for ArbRequest {
    type Value = Request;
    fn generate(&self, rng: &mut StdRng) -> Request {
        match rng.random_range(0u8..5) {
            0 => Request::Query {
                sql: arb_string(rng, 48),
            },
            1 => Request::Prepare {
                name: arb_string(rng, 16),
                sql: arb_string(rng, 48),
            },
            2 => Request::ExecutePrepared {
                name: arb_string(rng, 16),
                params: (0..rng.random_range(0usize..6))
                    .map(|_| arb_value(rng))
                    .collect(),
            },
            3 => Request::SetOption {
                key: arb_string(rng, 16),
                value: arb_string(rng, 16),
            },
            _ => Request::Close,
        }
    }
}

struct ArbResponse;

impl proptest::strategy::Strategy for ArbResponse {
    type Value = Response;
    fn generate(&self, rng: &mut StdRng) -> Response {
        const TYPES: &[DataType] = &[
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Str,
        ];
        match rng.random_range(0u8..7) {
            0 => Response::Hello {
                version: rng.random_range(0u16..u16::MAX),
                banner: arb_string(rng, 32),
            },
            1 => Response::Schema {
                fields: (0..rng.random_range(0usize..5))
                    .map(|_| WireField {
                        name: arb_string(rng, 16),
                        data_type: TYPES[rng.random_range(0..TYPES.len())],
                        nullable: rng.random_range(0u8..2) == 1,
                    })
                    .collect(),
            },
            2 => {
                let cols = rng.random_range(0usize..4);
                Response::RowBatch {
                    rows: (0..rng.random_range(0usize..8))
                        .map(|_| (0..cols).map(|_| arb_value(rng)).collect())
                        .collect(),
                }
            }
            3 => Response::Done {
                visibility: match rng.random_range(0u8..4) {
                    0 => None,
                    1 => Some(Visibility::Closed),
                    2 => Some(Visibility::SemiOpen),
                    _ => Some(Visibility::Open),
                },
                notes: (0..rng.random_range(0usize..3))
                    .map(|_| arb_string(rng, 24))
                    .collect(),
            },
            4 => Response::Error(WireError {
                code: rng.random_range(0u16..u16::MAX),
                statement_index: if rng.random_range(0u8..2) == 0 {
                    None
                } else {
                    Some(rng.random_range(0u32..u32::MAX - 1))
                },
                statement_text: arb_string(rng, 32),
                message: arb_string(rng, 32),
            }),
            5 => Response::PrepareOk {
                name: arb_string(rng, 16),
                param_count: rng.random_range(0u32..u32::MAX),
            },
            _ => Response::OptionOk {
                key: arb_string(rng, 16),
            },
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request survives an encode → decode round trip.
    #[test]
    fn request_roundtrip(req in ArbRequest) {
        let (ty, payload) = req.encode();
        let back = Request::decode(ty, &payload).unwrap();
        // Debug shows exact float bit patterns (NaN payloads, -0.0),
        // so this is bit-level equality.
        prop_assert_eq!(format!("{req:?}"), format!("{back:?}"));
    }

    /// Every response survives an encode → decode round trip.
    #[test]
    fn response_roundtrip(resp in ArbResponse) {
        let (ty, payload) = resp.encode();
        let back = Response::decode(ty, &payload).unwrap();
        prop_assert_eq!(format!("{resp:?}"), format!("{back:?}"));
    }

    /// Decoding is total: arbitrary bytes under every type tag produce
    /// `Ok` or `Err(DecodeError)`, never a panic.
    #[test]
    fn decode_arbitrary_bytes_never_panics(
        ty in 0u8..=255,
        payload in proptest::collection::vec(0u8..=255, 0..256),
    ) {
        let _ = Request::decode(ty, &payload);
        let _ = Response::decode(ty, &payload);
    }

    /// Truncating a valid payload anywhere fails soft (no panic), and
    /// appending trailing garbage is rejected rather than ignored.
    #[test]
    fn truncated_and_padded_payloads_fail_soft(req in ArbRequest, cut in 0usize..64) {
        let (ty, payload) = req.encode();
        if !payload.is_empty() {
            let cut = cut % payload.len();
            let _ = Request::decode(ty, &payload[..cut]);
        }
        let mut padded = payload.clone();
        padded.extend_from_slice(b"!!");
        prop_assert!(Request::decode(ty, &padded).is_err());
    }
}

// ---------------------------------------------------------------------
// Raw-socket robustness against a live server.
// ---------------------------------------------------------------------

fn start_server() -> ServerHandle {
    let engine = Arc::new(MosaicEngine::new());
    engine
        .session()
        .execute("CREATE TABLE p (x INT); INSERT INTO p VALUES (1), (2), (3);")
        .unwrap();
    let server = Server::bind(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let (handle, _join) = server.spawn();
    handle
}

/// A raw frame-level connection: reads the Hello, then lets tests send
/// arbitrary bytes.
struct Raw {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Raw {
    fn connect(handle: &ServerHandle) -> Raw {
        let stream = TcpStream::connect(handle.addr()).unwrap();
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(10)))
            .unwrap();
        let mut raw = Raw {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: BufWriter::new(stream),
        };
        match raw.read().expect("hello frame") {
            Response::Hello { .. } => raw,
            other => panic!("expected Hello, got {other:?}"),
        }
    }

    fn send_bytes(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).unwrap();
        self.writer.flush().unwrap();
    }

    fn send(&mut self, req: &Request) {
        let (ty, payload) = req.encode();
        write_frame(&mut self.writer, ty, &payload).unwrap();
        self.writer.flush().unwrap();
    }

    fn read(&mut self) -> Option<Response> {
        let (ty, payload) = read_frame(&mut self.reader).ok()??;
        Some(Response::decode(ty, &payload).unwrap())
    }

    fn read_error(&mut self) -> WireError {
        loop {
            match self.read().expect("response before close") {
                Response::Error(e) => return e,
                _ => continue,
            }
        }
    }

    /// Drain one full result set (Schema → RowBatch* → Done).
    fn read_result(&mut self) -> usize {
        let mut rows = 0;
        loop {
            match self.read().expect("response before close") {
                Response::Done { .. } => return rows,
                Response::RowBatch { rows: r } => rows += r.len(),
                Response::Schema { .. } => {}
                Response::Error(e) => panic!("unexpected error: {e}"),
                other => panic!("unexpected frame: {other:?}"),
            }
        }
    }
}

/// A client that disconnects mid-frame must not wedge the server: new
/// connections keep working and no permit leaks.
#[test]
fn truncated_frame_then_disconnect_leaves_server_healthy() {
    let handle = start_server();
    {
        let mut raw = Raw::connect(&handle);
        // Header promising 100 bytes, then only 3 — then hang up.
        let mut bytes = vec![0x01];
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(b"SEL");
        raw.send_bytes(&bytes);
    } // dropped: TCP FIN mid-frame

    let mut client = Client::connect(handle.addr()).unwrap();
    let got = client.query("SELECT COUNT(*) FROM p").unwrap();
    assert_eq!(got.table.value(0, 0), Value::Int(3));
    client.close().unwrap();
    assert_eq!(handle.permits_in_use(), 0);
    handle.shutdown();
}

/// A header claiming a payload beyond `MAX_FRAME` gets one
/// `FRAME_TOO_LARGE` error and a close — the server never tries to
/// allocate or read the claimed payload.
#[test]
fn oversized_frame_is_rejected_with_code_101() {
    let handle = start_server();
    let mut raw = Raw::connect(&handle);
    let mut bytes = vec![0x01];
    bytes.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
    raw.send_bytes(&bytes);
    let err = raw.read_error();
    assert_eq!(err.code, codes::FRAME_TOO_LARGE);
    // The server closes after the error frame.
    assert!(raw.read().is_none(), "connection must close");

    // And keeps serving others.
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(
        client
            .query("SELECT COUNT(*) FROM p")
            .unwrap()
            .table
            .value(0, 0),
        Value::Int(3)
    );
    client.close().unwrap();
    assert_eq!(handle.permits_in_use(), 0);
    handle.shutdown();
}

/// Malformed payloads — invalid UTF-8 SQL, an unknown frame type, a
/// truncated-but-complete-frame body — each get a `PROTOCOL` error and
/// the connection stays usable.
#[test]
fn malformed_payloads_get_protocol_errors_and_connection_survives() {
    let handle = start_server();
    let mut raw = Raw::connect(&handle);

    // Query frame whose string length prefix overruns the payload.
    let mut bytes = vec![0x01];
    bytes.extend_from_slice(&6u32.to_le_bytes());
    bytes.extend_from_slice(&999u32.to_le_bytes());
    bytes.extend_from_slice(b"ab");
    raw.send_bytes(&bytes);
    assert_eq!(raw.read_error().code, codes::PROTOCOL);

    // Query frame with invalid UTF-8 SQL.
    let sql = [0xFFu8, 0xFE, 0xFD];
    let mut payload = (sql.len() as u32).to_le_bytes().to_vec();
    payload.extend_from_slice(&sql);
    let mut bytes = vec![0x01];
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&payload);
    raw.send_bytes(&bytes);
    assert_eq!(raw.read_error().code, codes::PROTOCOL);

    // Unknown frame type (a response tag sent client → server).
    let mut bytes = vec![0x83];
    bytes.extend_from_slice(&0u32.to_le_bytes());
    raw.send_bytes(&bytes);
    assert_eq!(raw.read_error().code, codes::PROTOCOL);

    // After all that abuse, a well-formed query still works.
    raw.send(&Request::Query {
        sql: "SELECT x FROM p ORDER BY x".into(),
    });
    assert_eq!(raw.read_result(), 3);

    raw.send(&Request::Close);
    assert_eq!(handle.permits_in_use(), 0);
    handle.shutdown();
}

/// Out-of-order protocol traffic — executing a name that was never
/// prepared — is a typed error, not a close, and no permit leaks even
/// though admission wraps execution.
#[test]
fn out_of_order_execute_is_typed_error_not_close() {
    let handle = start_server();
    let mut raw = Raw::connect(&handle);
    raw.send(&Request::ExecutePrepared {
        name: "ghost".into(),
        params: vec![Value::Int(1)],
    });
    let err = raw.read_error();
    assert_eq!(err.code, codes::UNKNOWN_PREPARED);
    assert!(err.message.contains("ghost"), "message: {}", err.message);

    raw.send(&Request::Query {
        sql: "SELECT COUNT(*) FROM p".into(),
    });
    assert_eq!(raw.read_result(), 1);
    raw.send(&Request::Close);
    assert_eq!(handle.permits_in_use(), 0);
    handle.shutdown();
}

/// Results larger than one batch stream in `ROWS_PER_BATCH` chunks and
/// reassemble losslessly.
#[test]
fn large_results_stream_in_batches() {
    let engine = Arc::new(MosaicEngine::new());
    let mut sql = String::from("CREATE TABLE big (x INT);\n");
    let values: Vec<String> = (0..ROWS_PER_BATCH as i64 * 2 + 7)
        .map(|i| format!("({i})"))
        .collect();
    for chunk in values.chunks(2048) {
        sql.push_str("INSERT INTO big VALUES ");
        sql.push_str(&chunk.join(", "));
        sql.push_str(";\n");
    }
    engine.session().execute(&sql).unwrap();
    let server = Server::bind(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let (handle, _join) = server.spawn();

    let mut client = Client::connect(handle.addr()).unwrap();
    let got = client.query("SELECT x FROM big ORDER BY x").unwrap();
    assert_eq!(got.table.num_rows(), ROWS_PER_BATCH * 2 + 7);
    for r in 0..got.table.num_rows() {
        assert_eq!(got.table.value(r, 0), Value::Int(r as i64));
    }
    client.close().unwrap();
    handle.shutdown();
}
