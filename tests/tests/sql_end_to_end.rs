//! End-to-end SQL tests: the paper's §2 script and the surrounding DDL/DML
//! surface, through the full parse → plan → execute pipeline.

use mosaic_core::{MosaicDb, MosaicError, Value, Visibility};

fn db_with_paper_schema() -> MosaicDb {
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE TEMPORARY TABLE Eurostat (country TEXT, email TEXT, reported_count INT);
         INSERT INTO Eurostat (country, reported_count) VALUES ('UK', 60000), ('FR', 40000);
         INSERT INTO Eurostat (email, reported_count) VALUES ('Yahoo', 30000), ('AOL', 70000);
         CREATE GLOBAL POPULATION EuropeMigrants (country TEXT, email TEXT);
         CREATE METADATA EuropeMigrants_M1 AS
           (SELECT country, reported_count FROM Eurostat WHERE country IS NOT NULL);
         CREATE METADATA EuropeMigrants_M2 AS
           (SELECT email, reported_count FROM Eurostat WHERE email IS NOT NULL);
         CREATE SAMPLE YahooMigrants AS
           (SELECT * FROM EuropeMigrants WHERE email = 'Yahoo');",
    )
    .expect("paper §2 DDL executes");
    db
}

#[test]
fn paper_section2_script_round_trips() {
    let mut db = db_with_paper_schema();
    // Ingest a biased Yahoo-only sample: 3 UK rows, 1 FR row.
    db.execute(
        "INSERT INTO YahooMigrants VALUES
           ('UK','Yahoo'), ('UK','Yahoo'), ('UK','Yahoo'), ('FR','Yahoo');",
    )
    .unwrap();
    let semi = db
        .execute(
            "SELECT SEMI-OPEN country, email, COUNT(*) FROM EuropeMigrants \
             GROUP BY country, email ORDER BY country",
        )
        .unwrap();
    assert_eq!(semi.visibility, Some(Visibility::SemiOpen));
    // Only Yahoo groups can appear (no generation under SEMI-OPEN).
    assert_eq!(semi.table.num_rows(), 2);
    for r in 0..2 {
        assert_eq!(semi.table.value(r, 1), Value::Str("Yahoo".into()));
    }
    // IPF satisfied both 1-D marginals: country totals 40000/60000 and the
    // email marginal concentrates all mass on Yahoo (AOL cells are empty
    // in the sample — SEMI-OPEN false negatives).
    let fr = semi.table.value(0, 2).as_f64().unwrap();
    let uk = semi.table.value(1, 2).as_f64().unwrap();
    assert!(uk > fr, "UK ({uk}) should outweigh FR ({fr})");
    let total = uk + fr;
    assert!(total > 25_000.0, "total weighted count {total}");
}

#[test]
fn closed_query_is_raw_sample() {
    let mut db = db_with_paper_schema();
    db.execute("INSERT INTO YahooMigrants VALUES ('UK','Yahoo'), ('FR','Yahoo');")
        .unwrap();
    let closed = db
        .execute(
            "SELECT CLOSED country, COUNT(*) FROM EuropeMigrants GROUP BY country ORDER BY country",
        )
        .unwrap();
    assert_eq!(closed.table.value(0, 1), Value::Int(1));
    assert_eq!(closed.table.value(1, 1), Value::Int(1));
}

#[test]
fn default_visibility_is_semi_open() {
    let mut db = db_with_paper_schema();
    db.execute("INSERT INTO YahooMigrants VALUES ('UK','Yahoo');")
        .unwrap();
    let r = db
        .execute("SELECT country, COUNT(*) FROM EuropeMigrants GROUP BY country")
        .unwrap();
    assert_eq!(r.visibility, Some(Visibility::SemiOpen));
}

#[test]
fn visibility_on_aux_table_rejected() {
    let mut db = db_with_paper_schema();
    let err = db
        .execute("SELECT SEMI-OPEN country FROM Eurostat")
        .unwrap_err();
    assert!(matches!(err, MosaicError::Unsupported(_)), "{err}");
}

#[test]
fn insert_into_population_rejected() {
    let mut db = db_with_paper_schema();
    let err = db
        .execute("INSERT INTO EuropeMigrants VALUES ('UK', 'Yahoo')")
        .unwrap_err();
    assert!(matches!(err, MosaicError::Unsupported(_)), "{err}");
}

#[test]
fn semi_open_without_metadata_or_mechanism_fails() {
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE GLOBAL POPULATION P (a TEXT);
         CREATE SAMPLE S AS (SELECT * FROM P);
         INSERT INTO S VALUES ('x');",
    )
    .unwrap();
    let err = db.execute("SELECT SEMI-OPEN COUNT(*) FROM P").unwrap_err();
    assert!(matches!(err, MosaicError::Execution(_)), "{err}");
}

#[test]
fn known_uniform_mechanism_needs_no_metadata() {
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE GLOBAL POPULATION P (a TEXT);
         CREATE SAMPLE S AS (SELECT * FROM P USING MECHANISM UNIFORM PERCENT 10);
         INSERT INTO S VALUES ('x'), ('x'), ('y');",
    )
    .unwrap();
    let r = db.execute("SELECT SEMI-OPEN COUNT(*) FROM P").unwrap();
    // 3 rows at weight 100/10 = 10 each.
    assert_eq!(r.table.value(0, 0).as_f64().unwrap(), 30.0);
}

#[test]
fn stratified_mechanism_uses_strata_marginal() {
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE TABLE Report (region TEXT, reported_count INT);
         INSERT INTO Report VALUES ('N', 1000), ('S', 9000);
         CREATE GLOBAL POPULATION P (region TEXT, v INT);
         CREATE METADATA P_M1 AS (SELECT region, reported_count FROM Report);
         CREATE SAMPLE S AS (SELECT * FROM P USING MECHANISM STRATIFIED ON region PERCENT 10);
         INSERT INTO S VALUES ('N', 1), ('N', 2), ('S', 3), ('S', 4);",
    )
    .unwrap();
    let r = db
        .execute("SELECT SEMI-OPEN region, COUNT(*) FROM P GROUP BY region ORDER BY region")
        .unwrap();
    // N_h/n_h: N -> 1000/2 = 500 per row; S -> 9000/2 = 4500 per row.
    assert_eq!(r.table.value(0, 1).as_f64().unwrap(), 1000.0);
    assert_eq!(r.table.value(1, 1).as_f64().unwrap(), 9000.0);
}

#[test]
fn derived_population_filters_gp_sample() {
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE TABLE Report (city TEXT, reported_count INT);
         INSERT INTO Report VALUES ('A', 100), ('B', 300);
         CREATE GLOBAL POPULATION People (city TEXT, age INT);
         CREATE METADATA People_M1 AS (SELECT city, reported_count FROM Report);
         CREATE POPULATION CityA AS (SELECT * FROM People WHERE city = 'A');
         CREATE SAMPLE S AS (SELECT * FROM People);
         INSERT INTO S VALUES ('A', 30), ('A', 40), ('B', 50), ('B', 60), ('B', 70);",
    )
    .unwrap();
    // Query the derived population: only city A rows (reweighted to the
    // GP marginal, then viewed).
    let r = db.execute("SELECT SEMI-OPEN COUNT(*) FROM CityA").unwrap();
    let count = r.table.value(0, 0).as_f64().unwrap();
    assert!((count - 100.0).abs() < 1.0, "CityA count {count}");
    let closed = db.execute("SELECT CLOSED COUNT(*) FROM CityA").unwrap();
    assert_eq!(closed.table.value(0, 0), Value::Int(2));
}

#[test]
fn insert_select_from_aux_into_sample() {
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE TABLE Staging (name TEXT, n INT);
         INSERT INTO Staging VALUES ('a', 1), ('b', 2), ('c', 3);
         CREATE GLOBAL POPULATION P (name TEXT, n INT);
         CREATE SAMPLE S AS (SELECT * FROM P);
         INSERT INTO S SELECT name, n FROM Staging WHERE n > 1;",
    )
    .unwrap();
    let r = db.execute("SELECT name FROM S ORDER BY name").unwrap();
    assert_eq!(r.table.num_rows(), 2);
    assert_eq!(r.table.value(0, 0), Value::Str("b".into()));
}

#[test]
fn sample_scan_exposes_weight_column() {
    let mut db = db_with_paper_schema();
    db.execute("INSERT INTO YahooMigrants VALUES ('UK','Yahoo'), ('FR','Yahoo');")
        .unwrap();
    let r = db.execute("SELECT SUM(weight) FROM YahooMigrants").unwrap();
    // Initial weights are 1 per tuple (paper §3.2).
    assert_eq!(r.table.value(0, 0).as_f64().unwrap(), 2.0);
}

#[test]
fn user_set_initial_weights_respected_by_ipf() {
    let mut db = db_with_paper_schema();
    db.execute("INSERT INTO YahooMigrants VALUES ('UK','Yahoo'), ('UK','Yahoo'), ('FR','Yahoo');")
        .unwrap();
    db.set_sample_weights("YahooMigrants", vec![3.0, 1.0, 1.0])
        .unwrap();
    let r = db
        .execute("SELECT SEMI-OPEN country, COUNT(*) FROM EuropeMigrants GROUP BY country ORDER BY country")
        .unwrap();
    // Ratios within the UK cell are preserved by IPF (3:1).
    let uk_total = r.table.value(1, 1).as_f64().unwrap();
    assert!(uk_total > 0.0);
}

#[test]
fn drop_statements_work() {
    let mut db = db_with_paper_schema();
    db.execute("DROP SAMPLE YahooMigrants").unwrap();
    assert!(db.catalog().sample("YahooMigrants").is_none());
    db.execute("DROP METADATA EuropeMigrants_M1").unwrap();
    assert_eq!(db.catalog().metadata_for("EuropeMigrants").len(), 1);
    assert!(db.execute("DROP TABLE Nothing").is_err());
}

#[test]
fn scalar_select_without_from() {
    let mut db = MosaicDb::new();
    let r = db.execute("SELECT 1 + 2 AS three").unwrap();
    assert_eq!(r.table.value(0, 0), Value::Int(3));
    assert_eq!(r.table.schema().field(0).name, "three");
}

#[test]
fn metadata_requires_inferable_population() {
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE TABLE T (a TEXT, n INT);
         INSERT INTO T VALUES ('x', 1);
         CREATE GLOBAL POPULATION Pop (a TEXT);",
    )
    .unwrap();
    // Name prefix does not match any population and no FOR clause: error.
    let err = db
        .execute("CREATE METADATA Unrelated_M1 AS (SELECT a, n FROM T)")
        .unwrap_err();
    assert!(matches!(err, MosaicError::Catalog(_)), "{err}");
    // Explicit FOR succeeds.
    db.execute("CREATE METADATA Unrelated_M1 FOR Pop AS (SELECT a, n FROM T)")
        .unwrap();
    assert_eq!(db.catalog().metadata_for("Pop").len(), 1);
}

#[test]
fn duplicate_relations_rejected() {
    let mut db = db_with_paper_schema();
    assert!(db
        .execute("CREATE GLOBAL POPULATION Another (a TEXT)")
        .is_err());
    assert!(db
        .execute("CREATE SAMPLE YahooMigrants AS (SELECT * FROM EuropeMigrants)")
        .is_err());
}

#[test]
fn metadata_group_by_query_builds_marginal() {
    let mut db = MosaicDb::new();
    db.execute(
        "CREATE TABLE Raw (city TEXT);
         INSERT INTO Raw VALUES ('A'), ('A'), ('B');
         CREATE GLOBAL POPULATION P (city TEXT);
         CREATE METADATA P_M1 AS (SELECT city, COUNT(*) FROM Raw GROUP BY city);",
    )
    .unwrap();
    let catalog = db.catalog();
    let meta = catalog.metadata_for("P");
    assert_eq!(meta.len(), 1);
    assert_eq!(meta[0].marginal.get(&[Value::Str("A".into())]), Some(2.0));
}
