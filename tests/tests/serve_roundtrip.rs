//! End-to-end integration for `mosaic-serve`: a wire round-trip must be
//! an invisible transport. Concurrent TCP clients get results
//! **bit-identical** to in-process sessions over the planner-oracle
//! query shapes; server-side named prepared statements re-execute with
//! fresh params exactly like `Session::query_prepared`; per-connection
//! `SetOption` mirrors the session-override API (visibility, seed,
//! optimizer); and errors come back as stable typed codes — a prepared
//! statement whose table was dropped yields the same `Bind` error the
//! engine raises in-process, and the connection stays usable after it.

use std::sync::Arc;
use std::thread;

use mosaic_core::{MosaicEngine, Table, Visibility};
use mosaic_serve::protocol::codes;
use mosaic_serve::{Client, ServeConfig, Server, ServerHandle};
use mosaic_storage::Value;

/// Aggregate-heavy template subset of the planner-oracle workload, all
/// deterministic at any thread count.
const TEMPLATES: &[&str] = &[
    "SELECT COUNT(*) FROM t",
    "SELECT k, COUNT(*) FROM t GROUP BY k ORDER BY k",
    "SELECT SUM(i), AVG(f), MIN(i), MAX(f) FROM t",
    "SELECT k, i FROM t WHERE i > 40 ORDER BY i DESC, k LIMIT 20",
    "SELECT k, SUM(i) AS s FROM t WHERE i > 0 GROUP BY k ORDER BY s DESC, k LIMIT 5",
    "SELECT i, f FROM t WHERE i BETWEEN -10 AND 50 ORDER BY i, f LIMIT 25",
    "SELECT COUNT(*) FROM t WHERE f > 0.0 OR i < 0",
    "SELECT k, AVG(f) AS a, MIN(i), MAX(i) FROM t GROUP BY k ORDER BY k",
];

/// Seed a `t (k TEXT, i INT, f FLOAT)` table with NULLs in every column
/// and enough rows to span several morsels at small batch sizes.
fn seed_engine(rows: usize) -> Arc<MosaicEngine> {
    let engine = Arc::new(MosaicEngine::new());
    let mut sql = String::from("CREATE TABLE t (k TEXT, i INT, f FLOAT);\n");
    let mut values = Vec::with_capacity(rows);
    for r in 0..rows {
        let k = format!("'g{}'", r % 17);
        let i = if r % 7 == 0 {
            "NULL".into()
        } else {
            ((r % 200) as i64 - 60).to_string()
        };
        let f = if r % 9 == 0 {
            "NULL".into()
        } else {
            format!("{:.3}", (r as f64) * 0.5 - 55.0)
        };
        values.push(format!("({k}, {i}, {f})"));
    }
    for chunk in values.chunks(2048) {
        sql.push_str("INSERT INTO t VALUES ");
        sql.push_str(&chunk.join(", "));
        sql.push_str(";\n");
    }
    engine.session().execute(&sql).unwrap();
    engine
}

fn start(engine: Arc<MosaicEngine>, config: ServeConfig) -> ServerHandle {
    let server = Server::bind(engine, "127.0.0.1:0", config).unwrap();
    let (handle, _join) = server.spawn();
    handle
}

fn assert_identical(a: &Table, b: &Table, ctx: &str) {
    assert_eq!(a.num_rows(), b.num_rows(), "{ctx}: row count");
    assert_eq!(a.num_columns(), b.num_columns(), "{ctx}: column count");
    for c in 0..a.num_columns() {
        let (fa, fb) = (a.schema().field(c), b.schema().field(c));
        assert_eq!(fa.name, fb.name, "{ctx}: field {c} name");
        assert_eq!(fa.data_type, fb.data_type, "{ctx}: field {c} type");
    }
    for r in 0..a.num_rows() {
        for c in 0..a.num_columns() {
            // `Value` equality is total and compares floats by bit
            // pattern, so this is literal bit-identity.
            assert_eq!(a.value(r, c), b.value(r, c), "{ctx}: cell ({r},{c})");
        }
    }
}

/// Many concurrent TCP clients, every template, every response
/// bit-identical to in-process execution on the same engine.
#[test]
fn concurrent_clients_bit_identical_to_in_process() {
    let engine = seed_engine(4_000);
    let session = engine.session();
    let expected: Vec<Table> = TEMPLATES
        .iter()
        .map(|sql| session.query(sql).unwrap())
        .collect();
    let handle = start(Arc::clone(&engine), ServeConfig::default());
    let addr = handle.addr().to_string();

    let workers: Vec<_> = (0..12)
        .map(|ci| {
            let addr = addr.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr.as_str()).unwrap();
                for round in 0..3 {
                    for (ti, sql) in TEMPLATES.iter().enumerate() {
                        let got = client.query(sql).unwrap();
                        assert_identical(
                            &got.table,
                            &expected[ti],
                            &format!("client {ci} round {round} template {ti}"),
                        );
                    }
                }
                client.close().unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(handle.permits_in_use(), 0, "permits must not leak");
    handle.shutdown();
}

/// The acceptance bar from the paper-repro roadmap: 100 concurrent
/// connections, all answers identical to in-process execution.
#[test]
fn hundred_concurrent_connections() {
    let engine = seed_engine(2_000);
    let session = engine.session();
    let expected: Vec<Table> = TEMPLATES
        .iter()
        .map(|sql| session.query(sql).unwrap())
        .collect();
    let handle = start(
        Arc::clone(&engine),
        ServeConfig::default().with_max_connections(128),
    );
    let addr = handle.addr().to_string();

    let workers: Vec<_> = (0..100)
        .map(|ci| {
            let addr = addr.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                let mut client = Client::connect(addr.as_str()).unwrap();
                let ti = ci % TEMPLATES.len();
                let got = client.query(TEMPLATES[ti]).unwrap();
                assert_identical(&got.table, &expected[ti], &format!("client {ci}"));
                client.close().unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    assert!(handle.total_connections() >= 100);
    assert_eq!(handle.rejected_connections(), 0);
    assert_eq!(handle.permits_in_use(), 0);
    handle.shutdown();
}

/// Server-side named prepared statements: prepare once, re-execute with
/// fresh params, each result identical to direct in-process execution.
#[test]
fn named_prepared_reexecutes_with_fresh_params() {
    let engine = seed_engine(3_000);
    let session = engine.session();
    let handle = start(Arc::clone(&engine), ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    let sql = "SELECT k, COUNT(*) AS c, SUM(i) AS s FROM t WHERE i > ? GROUP BY k ORDER BY k";
    let param_count = client.prepare("hot", sql).unwrap();
    assert_eq!(param_count, 1);

    let prepared = session.prepare(sql).unwrap();
    for p in [-100i64, -10, 0, 25, 75, 10_000] {
        let got = client.execute_prepared("hot", &[Value::Int(p)]).unwrap();
        let want = session.query_prepared(&prepared, &[Value::Int(p)]).unwrap();
        assert_identical(&got.table, &want, &format!("param {p}"));
    }

    // Re-preparing under the same name replaces the old statement.
    client
        .prepare("hot", "SELECT COUNT(*) FROM t WHERE i > ?")
        .unwrap();
    let got = client.execute_prepared("hot", &[Value::Int(0)]).unwrap();
    let want = session.query("SELECT COUNT(*) FROM t WHERE i > 0").unwrap();
    assert_identical(&got.table, &want, "replaced prepared");
    client.close().unwrap();
    handle.shutdown();
}

/// Executing a prepared statement after its table is dropped surfaces
/// the engine's `Bind` error as wire code 6 — and the connection stays
/// usable afterwards.
#[test]
fn prepared_after_drop_is_a_clean_bind_error() {
    let engine = Arc::new(MosaicEngine::new());
    engine
        .session()
        .execute("CREATE TABLE victim (x INT); INSERT INTO victim VALUES (1), (2);")
        .unwrap();
    let handle = start(Arc::clone(&engine), ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    client
        .prepare("stale", "SELECT COUNT(*) FROM victim WHERE x > ?")
        .unwrap();
    client.query("DROP TABLE victim").unwrap();

    let err = client
        .execute_prepared("stale", &[Value::Int(0)])
        .unwrap_err();
    let wire = err.as_server().expect("server-side error expected");
    assert_eq!(wire.code, codes::BIND, "stale prepared must map to BIND");
    assert!(wire.message.contains("stale"), "message: {}", wire.message);

    // The connection survives the error.
    client.query("CREATE TABLE again (y INT)").unwrap();
    let got = client.query("SELECT COUNT(*) FROM again").unwrap();
    assert_eq!(got.table.value(0, 0), Value::Int(0));
    client.close().unwrap();
    handle.shutdown();
}

/// A multi-statement batch that fails midway reports the 0-based index
/// and text of the failing statement; earlier statements' effects
/// persist.
#[test]
fn batch_error_carries_statement_index_and_text() {
    let engine = Arc::new(MosaicEngine::new());
    let handle = start(Arc::clone(&engine), ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    let err = client
        .query(
            "CREATE TABLE batch_t (x INT); \
             SELECT nope FROM missing; \
             INSERT INTO batch_t VALUES (1)",
        )
        .unwrap_err();
    let wire = err.as_server().expect("server-side error expected");
    assert_eq!(wire.statement_index, Some(1));
    assert!(
        wire.statement_text.contains("missing"),
        "text: {}",
        wire.statement_text
    );

    // Statement 0 ran before the failure; statement 2 never did.
    let got = client.query("SELECT COUNT(*) FROM batch_t").unwrap();
    assert_eq!(got.table.value(0, 0), Value::Int(0));
    client.close().unwrap();
    handle.shutdown();
}

/// Wire error codes are stable per engine error variant.
#[test]
fn error_codes_are_stable() {
    let engine = Arc::new(MosaicEngine::new());
    engine.session().execute("CREATE TABLE e (x INT)").unwrap();
    let handle = start(Arc::clone(&engine), ServeConfig::default());
    let mut client = Client::connect(handle.addr()).unwrap();

    let code_of = |e: mosaic_serve::ClientError| -> u16 {
        e.as_server().expect("server error expected").code
    };
    assert_eq!(
        code_of(client.query("SELEC typo").unwrap_err()),
        codes::PARSE
    );
    assert_eq!(
        code_of(client.query("SELECT * FROM no_such_table").unwrap_err()),
        codes::CATALOG
    );
    assert_eq!(
        code_of(client.execute_prepared("never_prepared", &[]).unwrap_err()),
        codes::UNKNOWN_PREPARED
    );
    assert_eq!(
        code_of(client.set_option("flux_capacitor", "on").unwrap_err()),
        codes::UNKNOWN_OPTION
    );
    // The connection is still usable after every error above.
    let got = client.query("SELECT COUNT(*) FROM e").unwrap();
    assert_eq!(got.table.value(0, 0), Value::Int(0));
    client.close().unwrap();
    handle.shutdown();
}

/// `SetOption` mirrors the in-process session-override API: a
/// connection that sets `visibility` / `seed` answers exactly like a
/// `Session` carrying the same overrides, and `optimizer on|off` is
/// bit-identical (the optimizer is a pure plan rewrite).
#[test]
fn set_option_matches_session_overrides() {
    let engine = Arc::new(MosaicEngine::new());
    engine
        .session()
        .execute(
            "CREATE TABLE Eurostat (country TEXT, reported_count INT);
             INSERT INTO Eurostat VALUES ('UK', 30000), ('FR', 20000);
             CREATE GLOBAL POPULATION EuropeMigrants (country TEXT);
             CREATE METADATA EuropeMigrants_M1 AS
               (SELECT country, reported_count FROM Eurostat);
             CREATE SAMPLE YahooMigrants AS (SELECT * FROM EuropeMigrants);
             INSERT INTO YahooMigrants VALUES ('UK'), ('UK'), ('FR');",
        )
        .unwrap();
    let handle = start(Arc::clone(&engine), ServeConfig::default());

    let pop_query =
        "SELECT country, COUNT(*) FROM EuropeMigrants GROUP BY country ORDER BY country";

    // visibility: the wire session's default drives unannotated queries.
    let mut client = Client::connect(handle.addr()).unwrap();
    client.set_option("visibility", "semi-open").unwrap();
    let got = client.query(pop_query).unwrap();
    let want = engine
        .session()
        .with_default_visibility(Visibility::SemiOpen)
        .query(pop_query)
        .unwrap();
    assert_identical(&got.table, &want, "semi-open visibility");
    assert_eq!(got.visibility, Some(Visibility::SemiOpen));

    client.set_option("visibility", "closed").unwrap();
    let got = client.query(pop_query).unwrap();
    let want = engine
        .session()
        .with_default_visibility(Visibility::Closed)
        .query(pop_query)
        .unwrap();
    assert_identical(&got.table, &want, "closed visibility");

    // seed: OPEN queries are deterministic given the same seed.
    client.set_option("visibility", "open").unwrap();
    client.set_option("seed", "42").unwrap();
    let got = client.query(pop_query).unwrap();
    let want = engine
        .session()
        .with_default_visibility(Visibility::Open)
        .with_seed(42)
        .query(pop_query)
        .unwrap();
    assert_identical(&got.table, &want, "open visibility, seed 42");

    // optimizer on/off must be bit-identical.
    client.set_option("visibility", "closed").unwrap();
    let agg = "SELECT country, COUNT(*) AS c FROM Eurostat \
               WHERE reported_count > 0 GROUP BY country ORDER BY c DESC, country LIMIT 1";
    client.set_option("optimizer", "off").unwrap();
    let off = client.query(agg).unwrap();
    client.set_option("optimizer", "on").unwrap();
    let on = client.query(agg).unwrap();
    assert_identical(&off.table, &on.table, "optimizer on vs off");

    client.close().unwrap();
    handle.shutdown();
}
