//! Integration-test-only crate: all tests live under `tests/`.
